//! Offline stand-in for `proptest`.
//!
//! Supports the subset AnyDB's property tests use: the `proptest!` macro
//! with a `ProptestConfig`, range and `any::<T>()` strategies, collection
//! / option / tuple combinators, `prop_map` / `prop_filter`, `Just`,
//! `prop_oneof!`, simple `[charset]{m,n}` string patterns, and the
//! `prop_assert*` macros. Each test runs its configured number of
//! randomized cases from a deterministic per-test seed.
//!
//! Deliberately missing versus the real crate: shrinking (a failing case
//! reports its inputs via the panic message only) and persistence of
//! failing seeds. Tests stay deterministic across runs, so a failure
//! reproduces by rerunning the test.

pub mod collection;
pub mod option;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy, TestRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-test RNG seed derived from the test's name.
pub fn rng_for(test_name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Chooses uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}
