//! Option strategies (`prop::option::of`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Generates `None` about a quarter of the time, `Some` otherwise (same
/// default weighting as the real crate).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.random_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = crate::rng_for("option-tests");
        let s = of(0..5u32);
        let out: Vec<_> = (0..200).map(|_| s.generate(&mut rng)).collect();
        assert!(out.iter().any(Option::is_none));
        assert!(out.iter().any(Option::is_some));
    }
}
