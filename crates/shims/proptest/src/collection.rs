//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.random_range(self.size.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_elements_in_range() {
        let mut rng = crate::rng_for("collection-tests");
        let s = vec(0..10u32, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|e| *e < 10));
        }
    }

    #[test]
    fn nested_vecs() {
        let mut rng = crate::rng_for("collection-nested");
        let s = vec(vec(0..3u32, 1..3), 1..4);
        let v = s.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
