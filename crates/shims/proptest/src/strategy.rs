//! The `Strategy` trait and primitive strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// RNG driving all generation.
pub type TestRng = StdRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Retries generation until `f` accepts the value.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// References delegate so strategies can be reused without moving.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Generates any value of `T` (uniform over the type's domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates one value over the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Full-domain f64s biased toward interesting magnitudes: raw bit
    /// patterns (may be inf/NaN/subnormal) mixed with unit-range values.
    fn arbitrary(rng: &mut TestRng) -> Self {
        use rand::RngCore;
        if rng.next_u64() & 1 == 0 {
            f64::from_bits(rng.next_u64())
        } else {
            rng.random_range(-1.0e6..1.0e6)
        }
    }
}

// Ranges are strategies themselves (`0..100u64`, `1usize..64`, …).
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn ObjectStrategy<V>>);

trait ObjectStrategy<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ObjectStrategy<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_obj(rng)
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Union over the given arms.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

// Tuple strategies: generate each component.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// `&str` patterns of the form `[charset]{m,n}` act as string strategies
/// (the only regex shape AnyDB's tests use). Charset entries are literal
/// characters or `a-z` ranges.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = rng.random_range(min..=max);
        (0..len)
            .map(|_| chars[rng.random_range(0..chars.len())])
            .collect()
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let bounds = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = bounds.split_once(',')?;
    let min: usize = lo.trim().parse().ok()?;
    let max: usize = hi.trim().parse().ok()?;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (a, b) = (cs[i], cs[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    if chars.is_empty() || min > max {
        return None;
    }
    Some((chars, min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        crate::rng_for("strategy-tests")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (3..9u64).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (1..=4usize).generate(&mut r);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = rng();
        let s = (0..100i64)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert_eq!(v % 2, 1);
        }
    }

    #[test]
    fn union_picks_all_arms() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn string_pattern_respects_charset_and_len() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-c1 ]{2,5}".generate(&mut r);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc1 ".contains(c)));
        }
    }
}
