//! Offline stand-in for `criterion`.
//!
//! A real measuring harness, not a no-op: `bench_function` calibrates an
//! iteration count against the configured measurement time, takes
//! `sample_size` samples, and reports min/mean/max nanoseconds per
//! iteration in criterion's familiar `time: [..]` shape. What it drops
//! relative to the real crate is the statistics machinery (outlier
//! classification, regression against saved baselines, HTML reports).

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration + runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Untimed warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget split across the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up + calibration: double iters until one batch costs ≥ ~1ms
        // or the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= Duration::from_millis(1)
                || warm_start.elapsed() >= self.warm_up_time
                || b.iters >= 1 << 30
            {
                break;
            }
            b.iters *= 2;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        b.iters = if per_iter > 0.0 {
            ((budget / per_iter) as u64).clamp(1, 1 << 32)
        } else {
            1 << 20
        };

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64 * 1e9);
        }
        samples.sort_by(|a, z| a.total_cmp(z));
        let min = samples[0];
        let max = samples[samples.len() - 1];
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} time: [{:>10} {:>10} {:>10}]",
            ns(min),
            ns(mean),
            ns(max)
        );
        self
    }

    /// Prints the run footer (kept for call-site compatibility).
    pub fn final_summary(&self) {
        println!();
    }
}

fn ns(v: f64) -> String {
    if v < 1_000.0 {
        format!("{v:.2} ns")
    } else if v < 1_000_000.0 {
        format!("{:.2} µs", v / 1e3)
    } else if v < 1_000_000_000.0 {
        format!("{:.2} ms", v / 1e6)
    } else {
        format!("{:.2} s", v / 1e9)
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )*
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(ns(12.0), "12.00 ns");
        assert_eq!(ns(1_500.0), "1.50 µs");
        assert_eq!(ns(2_000_000.0), "2.00 ms");
    }
}
