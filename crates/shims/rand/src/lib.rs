//! Offline stand-in for `rand` 0.9.
//!
//! Implements the API subset AnyDB's workload generators and tests use:
//! `rngs::StdRng` (here: xoshiro256**, seeded via SplitMix64 like the
//! reference `seed_from_u64`), the `Rng` extension trait with `random`,
//! `random_range`, and `random_bool`, and `SeedableRng::seed_from_u64`.
//! Statistical quality is far beyond what TPC-C parameter generation
//! needs; the point is determinism per seed, which this provides.

/// Core source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed (stream-splitting via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples one value.
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl StandardUniform for u64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng()
    }
}

impl StandardUniform for u32 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 32) as u32
    }
}

impl StandardUniform for i64 {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() as i64
    }
}

impl StandardUniform for bool {
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Element types uniformly samplable from a half-open or closed interval.
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range");
                (lo as i128 + (rng() as u128 % span as u128) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(lo: Self, hi: Self, _inclusive: bool, rng: &mut dyn FnMut() -> u64) -> Self {
        assert!(lo < hi, "empty range");
        let u = (rng() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::random_range`]. The blanket impls over
/// [`SampleUniform`] (rather than per-type impls) matter for inference:
/// `Range<?T>::Output == i64` unifies `?T = i64` structurally, so
/// unsuffixed integer literals pick up their type from the call site
/// exactly as with the real crate.
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Samples one value from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for std::ops::Range<T> {
    type Output = T;
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange for std::ops::RangeInclusive<T> {
    type Output = T;
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods every RNG gets.
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        let mut f = || self.next_u64();
        T::sample(&mut f)
    }

    /// Samples uniformly from a range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut f = || self.next_u64();
        range.sample_from(&mut f)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.random_range(3..10u64);
            assert!((3..10).contains(&v));
            let w = r.random_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = r.random_range(1.0..5000.0f64);
            assert!((1.0..5000.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn full_domain_ranges_do_not_overflow() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let _ = r.random_range(0..=u64::MAX);
            let _ = r.random_range(i64::MIN..=i64::MAX);
        }
    }
}
