//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset AnyDB uses: `utils::CachePadded` (a real
//! cache-line-aligned wrapper — this one is not a behavioral
//! approximation) and `channel::{unbounded, bounded}` MPMC channels built
//! on a mutex + condvars. The channel shim trades crossbeam's lock-free
//! throughput for simplicity; AnyDB's hot path runs on its own SPSC ring
//! and inbox, which do not go through this crate.

pub mod channel;
pub mod queue;
pub mod utils;
