//! `CachePadded`: pad and align a value to a cache line.

use std::ops::{Deref, DerefMut};

/// Aligns the wrapped value to 128 bytes so two `CachePadded` values never
/// share a cache line (128 covers the spatial-prefetcher pairing on x86
/// and the 128-byte lines on some ARM parts — same choice as crossbeam).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_to_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(p.into_inner(), 7);
    }
}
