//! MPMC channels with crossbeam's API shape.
//!
//! Mutex + condvar implementation covering exactly what AnyDB calls:
//! `unbounded`/`bounded` constructors, cloneable senders and receivers,
//! `send`, `recv`, `try_recv`, `recv_timeout`, `same_channel`, and
//! disconnect detection on both sides.
//!
//! One deliberate extension beyond the real crate's API:
//! [`Receiver::try_recv_many`], a bulk non-blocking receive that moves a
//! whole group of messages per lock acquisition. Real crossbeam spells
//! this `try_iter().take(max)`, which locks once per element; when this
//! shim is swapped for the real crate, `try_recv_many` needs a one-line
//! adapter on top of `try_iter` (the call sites are the engine's
//! completion loops — see `anydb-core::engine`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty; senders still connected.
    Empty,
    /// Channel empty and all senders dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// Channel empty and all senders dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half. Cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half. Cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `cap` messages; `send` blocks when
/// full.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full. Fails
    /// only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            match shared.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = shared
                        .not_full
                        .wait_timeout(queue, Duration::from_millis(10))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// True if `other` sends into the same channel as `self`.
    pub fn same_channel(&self, other: &Sender<T>) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Wake receivers so they observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            shared.not_full.notify_one();
            return Ok(v);
        }
        if shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Bulk non-blocking receive: moves up to `max` queued messages into
    /// `out` under a single lock acquisition; returns how many were taken.
    /// `Err(Empty)` / `Err(Disconnected)` when nothing was queued.
    ///
    /// This is the receiver-side mirror of batched event streaming for
    /// the completion path: one mutex crossing covers a whole group of
    /// completion notices instead of one `try_recv` handshake each.
    pub fn try_recv_many(&self, out: &mut Vec<T>, max: usize) -> Result<usize, TryRecvError> {
        debug_assert!(max > 0, "try_recv_many with max = 0 cannot make progress");
        let shared = &*self.shared;
        let mut queue = shared.lock();
        let n = queue.len().min(max);
        if n == 0 {
            drop(queue);
            return if shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            };
        }
        out.extend(queue.drain(..n));
        drop(queue);
        if shared.cap.is_some() {
            // Freed `n` slots; blocked senders of a bounded channel can
            // make progress again.
            shared.not_full.notify_all();
        }
        Ok(n)
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(v);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            queue = shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_both_ways() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_until_space() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(9));
    }

    #[test]
    fn try_recv_many_takes_chunks_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_many(&mut out, 4), Ok(4));
        assert_eq!(rx.try_recv_many(&mut out, 100), Ok(6));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.try_recv_many(&mut out, 4), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(
            rx.try_recv_many(&mut out, 4),
            Err(TryRecvError::Disconnected)
        );
    }

    #[test]
    fn try_recv_many_unblocks_bounded_senders() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = std::thread::spawn(move || tx.send(3));
        std::thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(rx.try_recv_many(&mut out, 8), Ok(2));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn same_channel_tracks_identity() {
        let (tx, _rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        let (other, _orx) = unbounded::<u8>();
        assert!(tx.same_channel(&tx2));
        assert!(!tx.same_channel(&other));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..1000u32 {
                tx.send(i).unwrap();
            }
        });
        let mut n = 0;
        while let Ok(v) = rx.recv() {
            assert_eq!(v, n);
            n += 1;
        }
        assert_eq!(n, 1000);
        h.join().unwrap();
    }
}
