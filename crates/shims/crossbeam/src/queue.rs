//! Unbounded MPMC queue (`SegQueue`) with crossbeam's API shape.
//!
//! Mutex-backed. AnyDB's event inbox no longer routes through this type —
//! it keeps its own queue with a bulk-drain path (see
//! `anydb-stream::inbox`) — so this shim only serves ad-hoc uses.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Unbounded concurrent queue.
#[derive(Debug, Default)]
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Empty queue.
    pub const fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a value.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Dequeues the oldest value, if any.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
