//! # anydb-workload
//!
//! Workload generators for the AnyDB reproduction:
//!
//! * [`tpcc`] — the TPC-C schema, loader, and parameter generators for the
//!   two dominant transactions the paper evaluates (payment, new-order),
//! * [`chbench`] — the CH-benCHmark Q3 analytical query of §4 ("open
//!   orders for all customers from states beginning with 'A' since 2007"),
//! * [`phases`] — the evolving 12-phase workload of Figure 1 and the
//!   6-phase OLTP schedule of Figure 5.

pub mod chbench;
pub mod phases;
pub mod tpcc;

pub use chbench::Q3Spec;
pub use phases::{Phase, PhaseKind, PhaseSchedule};
pub use tpcc::{CustomerSelector, NewOrderParams, PaymentGen, PaymentParams, TpccConfig, TpccDb};
