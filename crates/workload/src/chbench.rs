//! CH-benCHmark Q3 — the analytical query of the paper's §4.
//!
//! "Based on CH-benCHmark Q3, our query reports all open orders for all
//! customers from states beginning with 'A' since 2007 via 3 (filtered)
//! scans and 2 joins."
//!
//! Shape over our TPC-C schema:
//!
//! ```sql
//! SELECT o_w_id, o_d_id, o_id, c_id, o_entry_d
//! FROM customer, orders, neworder
//! WHERE c_state LIKE 'A%'
//!   AND o_entry_d >= 2007-01-01
//!   AND o_w_id = c_w_id AND o_d_id = c_d_id AND o_c_id = c_id   -- join 1
//!   AND no_w_id = o_w_id AND no_d_id = o_d_id AND no_o_id = o_id -- join 2
//! ```
//!
//! This module only *describes* the query (predicates, join keys, sides);
//! execution lives in the engines so that AnyDB and reference
//! implementations run the identical specification.

use anydb_common::{ColPredicate, Tuple, Value};

use crate::tpcc::cols;

/// The Q3 specification with its literal parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q3Spec {
    /// Customers qualify when `c_state` starts with this prefix.
    pub state_prefix: char,
    /// Orders qualify when `o_entry_d >= entry_date_min` (yyyymmdd).
    pub entry_date_min: i64,
    /// Upper bound of the order date window (inclusive, yyyymmdd).
    /// `i64::MAX` (the default) leaves the window open-ended — the plain
    /// CH-benCHmark "since 2007" shape; a finite bound turns the order
    /// filter into a range whose pushdown form is
    /// [`ColPredicate::IntBetween`].
    pub entry_date_max: i64,
}

impl Default for Q3Spec {
    fn default() -> Self {
        Self {
            state_prefix: 'A',
            entry_date_min: 20070101, // 2007-01-01
            entry_date_max: i64::MAX, // open-ended window
        }
    }
}

impl Q3Spec {
    /// Key columns a columnar customer stream ships: `(c_w_id, c_d_id,
    /// c_id)` — with the state filter pushed to the scan, nothing else
    /// needs to cross the wire.
    pub const CUSTOMER_KEY_PROJ: [usize; 3] = [
        cols::customer::C_W_ID,
        cols::customer::C_D_ID,
        cols::customer::C_ID,
    ];

    /// Key columns a columnar orders stream ships: `(o_w_id, o_d_id,
    /// o_id, o_c_id)` — the entry-date filter is pushed to the scan, so
    /// `o_entry_d` itself stays home.
    pub const ORDER_KEY_PROJ: [usize; 4] = [
        cols::orders::O_W_ID,
        cols::orders::O_D_ID,
        cols::orders::O_ID,
        cols::orders::O_C_ID,
    ];

    /// Key columns a columnar new-order stream ships (the whole relation
    /// is its key).
    pub const NEWORDER_KEY_PROJ: [usize; 3] = [
        cols::neworder::NO_W_ID,
        cols::neworder::NO_D_ID,
        cols::neworder::NO_O_ID,
    ];

    /// Customer projection for **shared** multi-query execution: the join
    /// keys plus `c_state`, the filter column itself. A shared scan runs
    /// with the *hull* of the member predicates pushed down, so each
    /// member must be able to re-check its exact state prefix against the
    /// scanned batch — the filter column has to ride along.
    pub const CUSTOMER_SHARED_PROJ: [usize; 4] = [
        cols::customer::C_W_ID,
        cols::customer::C_D_ID,
        cols::customer::C_ID,
        cols::customer::C_STATE,
    ];

    /// Orders projection for **shared** multi-query execution: the join
    /// keys plus `o_entry_d`, so each member's exact date window can be
    /// refined against the hull-scanned batch.
    pub const ORDER_SHARED_PROJ: [usize; 5] = [
        cols::orders::O_W_ID,
        cols::orders::O_D_ID,
        cols::orders::O_ID,
        cols::orders::O_C_ID,
        cols::orders::O_ENTRY_D,
    ];

    /// Customer-side filter (`c_state LIKE 'A%'`).
    pub fn customer_filter(&self, t: &Tuple) -> bool {
        match t.get(cols::customer::C_STATE) {
            Value::Str(s) => s.starts_with(self.state_prefix),
            _ => false,
        }
    }

    /// Order-side filter (`o_entry_d` within the spec's date window).
    pub fn order_filter(&self, t: &Tuple) -> bool {
        matches!(
            t.get(cols::orders::O_ENTRY_D),
            Value::Int(d) if *d >= self.entry_date_min && *d <= self.entry_date_max
        )
    }

    /// New-order side has no predicate (openness is membership itself).
    pub fn neworder_filter(&self, _t: &Tuple) -> bool {
        true
    }

    /// The customer filter as a pushdown-able columnar predicate
    /// (addressed to the full customer schema, for evaluation at the
    /// scan before projection).
    pub fn customer_pred(&self) -> ColPredicate {
        ColPredicate::StrPrefix {
            col: cols::customer::C_STATE,
            prefix: self.state_prefix.to_string(),
        }
    }

    /// The order filter as a pushdown-able columnar predicate: the
    /// open-ended window ships as `IntGe`, a bounded window as the
    /// `IntBetween` range form.
    pub fn order_pred(&self) -> ColPredicate {
        if self.entry_date_max == i64::MAX {
            ColPredicate::IntGe {
                col: cols::orders::O_ENTRY_D,
                min: self.entry_date_min,
            }
        } else {
            ColPredicate::IntBetween {
                col: cols::orders::O_ENTRY_D,
                min: self.entry_date_min,
                max: self.entry_date_max,
            }
        }
    }

    /// Join-1 build key: customer `(c_w_id, c_d_id, c_id)`.
    pub fn customer_join_key(t: &Tuple) -> (i64, i64, i64) {
        (
            t.get(cols::customer::C_W_ID).as_int().unwrap_or(0),
            t.get(cols::customer::C_D_ID).as_int().unwrap_or(0),
            t.get(cols::customer::C_ID).as_int().unwrap_or(0),
        )
    }

    /// Join-1 probe key: order `(o_w_id, o_d_id, o_c_id)`.
    pub fn order_customer_key(t: &Tuple) -> (i64, i64, i64) {
        (
            t.get(cols::orders::O_W_ID).as_int().unwrap_or(0),
            t.get(cols::orders::O_D_ID).as_int().unwrap_or(0),
            t.get(cols::orders::O_C_ID).as_int().unwrap_or(0),
        )
    }

    /// Join-2 build key: order `(o_w_id, o_d_id, o_id)`.
    pub fn order_key(t: &Tuple) -> (i64, i64, i64) {
        (
            t.get(cols::orders::O_W_ID).as_int().unwrap_or(0),
            t.get(cols::orders::O_D_ID).as_int().unwrap_or(0),
            t.get(cols::orders::O_ID).as_int().unwrap_or(0),
        )
    }

    /// Join-2 probe key: new-order `(no_w_id, no_d_id, no_o_id)`.
    pub fn neworder_key(t: &Tuple) -> (i64, i64, i64) {
        (
            t.get(cols::neworder::NO_W_ID).as_int().unwrap_or(0),
            t.get(cols::neworder::NO_D_ID).as_int().unwrap_or(0),
            t.get(cols::neworder::NO_O_ID).as_int().unwrap_or(0),
        )
    }
}

/// A straightforward single-threaded reference execution of Q3 over
/// in-memory tuple sets. Engines are tested against this oracle.
pub fn reference_q3(
    spec: &Q3Spec,
    customers: &[Tuple],
    orders: &[Tuple],
    neworders: &[Tuple],
) -> usize {
    use std::collections::HashSet;
    let qualifying_customers: HashSet<(i64, i64, i64)> = customers
        .iter()
        .filter(|t| spec.customer_filter(t))
        .map(Q3Spec::customer_join_key)
        .collect();
    let qualifying_orders: HashSet<(i64, i64, i64)> = orders
        .iter()
        .filter(|t| spec.order_filter(t))
        .filter(|t| qualifying_customers.contains(&Q3Spec::order_customer_key(t)))
        .map(Q3Spec::order_key)
        .collect();
    neworders
        .iter()
        .filter(|t| qualifying_orders.contains(&Q3Spec::neworder_key(t)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcc::{TpccConfig, TpccDb};
    use anydb_common::PartitionId;

    fn collect_all(table: &anydb_storage::Table) -> Vec<Tuple> {
        let mut out = Vec::new();
        for p in 0..table.partition_count() {
            out.extend(
                table
                    .partition(PartitionId(p))
                    .unwrap()
                    .collect_matching(|_| true),
            );
        }
        out
    }

    #[test]
    fn filters_behave() {
        let spec = Q3Spec::default();
        let db = TpccDb::load(TpccConfig::small(), 1).unwrap();
        let customers = collect_all(&db.customer);
        let matching = customers.iter().filter(|t| spec.customer_filter(t)).count();
        // 4 of 20 states start with 'A'; expect roughly 20%.
        let frac = matching as f64 / customers.len() as f64;
        assert!((0.05..=0.45).contains(&frac), "A-state fraction {frac}");

        let orders = collect_all(&db.orders);
        let matching = orders.iter().filter(|t| spec.order_filter(t)).count();
        assert!(matching > 0);
        assert!(matching < orders.len());
    }

    #[test]
    fn pushdown_predicates_agree_with_row_filters() {
        let spec = Q3Spec::default();
        let db = TpccDb::load(TpccConfig::small(), 4).unwrap();
        let cust_pred = spec.customer_pred();
        for t in collect_all(&db.customer) {
            assert_eq!(cust_pred.matches_tuple(&t), spec.customer_filter(&t));
        }
        let ord_pred = spec.order_pred();
        for t in collect_all(&db.orders) {
            assert_eq!(ord_pred.matches_tuple(&t), spec.order_filter(&t));
        }
    }

    #[test]
    fn reference_join_produces_plausible_count() {
        let spec = Q3Spec::default();
        let db = TpccDb::load(TpccConfig::small(), 2).unwrap();
        let customers = collect_all(&db.customer);
        let orders = collect_all(&db.orders);
        let neworders = collect_all(&db.neworder);
        let n = reference_q3(&spec, &customers, &orders, &neworders);
        // Result is bounded by open orders and must not be everything.
        assert!(n <= neworders.len());
        // With 20% A-states and ~60% date pass, expect a nonzero result at
        // this scale.
        assert!(n > 0, "reference q3 found no rows");
    }

    #[test]
    fn stricter_spec_shrinks_result() {
        let db = TpccDb::load(TpccConfig::small(), 3).unwrap();
        let customers = collect_all(&db.customer);
        let orders = collect_all(&db.orders);
        let neworders = collect_all(&db.neworder);
        let loose = reference_q3(
            &Q3Spec {
                entry_date_min: 0,
                ..Q3Spec::default()
            },
            &customers,
            &orders,
            &neworders,
        );
        let tight = reference_q3(&Q3Spec::default(), &customers, &orders, &neworders);
        assert!(tight <= loose);
    }

    #[test]
    fn bounded_date_window_pushes_down_as_int_between() {
        let spec = Q3Spec {
            entry_date_max: 20121231,
            ..Q3Spec::default()
        };
        assert!(matches!(
            spec.order_pred(),
            ColPredicate::IntBetween {
                min: 20070101,
                max: 20121231,
                ..
            }
        ));
        // Row filter and pushdown predicate stay in lockstep on real data.
        let db = TpccDb::load(TpccConfig::small(), 5).unwrap();
        let pred = spec.order_pred();
        let mut in_window = 0usize;
        for t in collect_all(&db.orders) {
            assert_eq!(pred.matches_tuple(&t), spec.order_filter(&t));
            in_window += usize::from(spec.order_filter(&t));
        }
        // The bounded window is strictly tighter than the open-ended one.
        let open = collect_all(&db.orders)
            .iter()
            .filter(|t| Q3Spec::default().order_filter(t))
            .count();
        assert!(in_window <= open);
        assert!(in_window > 0, "window chosen to keep some orders");
    }
}
