//! TPC-C schema, configuration, loader, and transaction parameter
//! generators.
//!
//! The paper evaluates "the two dominant transactions of the TPC-C
//! benchmark (i.e., payment and new-order)" (§3). This module provides the
//! nine TPC-C tables partitioned by warehouse, a scalable loader, and
//! skew-controllable parameter generators for both transactions.

pub mod cols;
pub mod gen;
pub mod load;

pub use gen::{CustomerSelector, NewOrderGen, NewOrderParams, PaymentGen, PaymentParams};
pub use load::TpccDb;

use anydb_common::{ColumnDef, DataType, Schema};
use anydb_storage::{Partitioner, SecondaryIndexSpec, TableSpec};

/// TPC-C last-name syllables (spec §4.3.2.3).
pub const LAST_NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Builds a TPC-C customer last name from a number in `0..=999`.
pub fn last_name(num: u64) -> String {
    debug_assert!(num <= 999);
    let mut s = String::with_capacity(15);
    s.push_str(LAST_NAME_SYLLABLES[(num / 100 % 10) as usize]);
    s.push_str(LAST_NAME_SYLLABLES[(num / 10 % 10) as usize]);
    s.push_str(LAST_NAME_SYLLABLES[(num % 10) as usize]);
    s
}

/// Scale configuration.
///
/// Defaults follow TPC-C shape but at reduced scale so tests and benches
/// load in milliseconds; the figure harnesses raise what they need.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Number of warehouses (= number of partitions of every partitioned
    /// table).
    pub warehouses: u32,
    /// Districts per warehouse (spec: 10).
    pub districts_per_warehouse: u32,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u32,
    /// Item catalog size (spec: 100_000).
    pub items: u32,
    /// Pre-loaded orders per district (spec: 3000).
    pub orders_per_district: u32,
    /// Fraction of pre-loaded orders that are still open (have a NEW-ORDER
    /// row; spec: the last 900 of 3000).
    pub open_order_fraction: f64,
    /// Order lines per order (spec: 5-15; we load the midpoint).
    pub lines_per_order: u32,
    /// NURand C constant for customer ids.
    pub c_for_customer: u64,
    /// NURand C constant for item ids.
    pub c_for_item: u64,
    /// NURand C constant for last names.
    pub c_for_lastname: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        Self {
            warehouses: 4,
            districts_per_warehouse: 10,
            customers_per_district: 300,
            items: 1000,
            orders_per_district: 300,
            open_order_fraction: 0.3,
            lines_per_order: 10,
            c_for_customer: 259,
            c_for_item: 7911,
            c_for_lastname: 173,
        }
    }
}

impl TpccConfig {
    /// A tiny configuration for unit tests (loads in ~a millisecond).
    pub fn small() -> Self {
        Self {
            warehouses: 2,
            districts_per_warehouse: 2,
            customers_per_district: 30,
            items: 50,
            orders_per_district: 20,
            ..Self::default()
        }
    }

    /// Total customers.
    pub fn total_customers(&self) -> u64 {
        self.warehouses as u64
            * self.districts_per_warehouse as u64
            * self.customers_per_district as u64
    }
}

/// Schema of the WAREHOUSE table.
pub fn warehouse_schema() -> Schema {
    Schema::new(
        "warehouse",
        vec![
            ColumnDef::new("w_id", DataType::Int),
            ColumnDef::new("w_name", DataType::Str),
            ColumnDef::new("w_state", DataType::Str),
            ColumnDef::new("w_ytd", DataType::Float),
        ],
        &["w_id"],
    )
}

/// Schema of the DISTRICT table.
pub fn district_schema() -> Schema {
    Schema::new(
        "district",
        vec![
            ColumnDef::new("d_w_id", DataType::Int),
            ColumnDef::new("d_id", DataType::Int),
            ColumnDef::new("d_name", DataType::Str),
            ColumnDef::new("d_ytd", DataType::Float),
            ColumnDef::new("d_next_o_id", DataType::Int),
        ],
        &["d_w_id", "d_id"],
    )
}

/// Schema of the CUSTOMER table.
pub fn customer_schema() -> Schema {
    Schema::new(
        "customer",
        vec![
            ColumnDef::new("c_w_id", DataType::Int),
            ColumnDef::new("c_d_id", DataType::Int),
            ColumnDef::new("c_id", DataType::Int),
            ColumnDef::new("c_first", DataType::Str),
            ColumnDef::new("c_last", DataType::Str),
            ColumnDef::new("c_state", DataType::Str),
            ColumnDef::new("c_balance", DataType::Float),
            ColumnDef::new("c_ytd_payment", DataType::Float),
            ColumnDef::new("c_payment_cnt", DataType::Int),
            ColumnDef::new("c_data", DataType::Str),
        ],
        &["c_w_id", "c_d_id", "c_id"],
    )
}

/// Schema of the HISTORY table. TPC-C history has no primary key; we add a
/// per-warehouse surrogate (`h_id`) because our storage requires one.
pub fn history_schema() -> Schema {
    Schema::new(
        "history",
        vec![
            ColumnDef::new("h_w_id", DataType::Int),
            ColumnDef::new("h_id", DataType::Int),
            ColumnDef::new("h_d_id", DataType::Int),
            ColumnDef::new("h_c_id", DataType::Int),
            ColumnDef::new("h_date", DataType::Int),
            ColumnDef::new("h_amount", DataType::Float),
        ],
        &["h_w_id", "h_id"],
    )
}

/// Schema of the NEW-ORDER table.
pub fn neworder_schema() -> Schema {
    Schema::new(
        "neworder",
        vec![
            ColumnDef::new("no_w_id", DataType::Int),
            ColumnDef::new("no_d_id", DataType::Int),
            ColumnDef::new("no_o_id", DataType::Int),
        ],
        &["no_w_id", "no_d_id", "no_o_id"],
    )
}

/// Schema of the ORDER table.
pub fn order_schema() -> Schema {
    Schema::new(
        "orders",
        vec![
            ColumnDef::new("o_w_id", DataType::Int),
            ColumnDef::new("o_d_id", DataType::Int),
            ColumnDef::new("o_id", DataType::Int),
            ColumnDef::new("o_c_id", DataType::Int),
            ColumnDef::new("o_entry_d", DataType::Int),
            ColumnDef::nullable("o_carrier_id", DataType::Int),
            ColumnDef::new("o_ol_cnt", DataType::Int),
        ],
        &["o_w_id", "o_d_id", "o_id"],
    )
}

/// Schema of the ORDER-LINE table.
pub fn orderline_schema() -> Schema {
    Schema::new(
        "orderline",
        vec![
            ColumnDef::new("ol_w_id", DataType::Int),
            ColumnDef::new("ol_d_id", DataType::Int),
            ColumnDef::new("ol_o_id", DataType::Int),
            ColumnDef::new("ol_number", DataType::Int),
            ColumnDef::new("ol_i_id", DataType::Int),
            ColumnDef::new("ol_quantity", DataType::Int),
            ColumnDef::new("ol_amount", DataType::Float),
        ],
        &["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"],
    )
}

/// Schema of the ITEM table (reference data, single partition).
pub fn item_schema() -> Schema {
    Schema::new(
        "item",
        vec![
            ColumnDef::new("i_id", DataType::Int),
            ColumnDef::new("i_name", DataType::Str),
            ColumnDef::new("i_price", DataType::Float),
        ],
        &["i_id"],
    )
}

/// Schema of the STOCK table.
pub fn stock_schema() -> Schema {
    Schema::new(
        "stock",
        vec![
            ColumnDef::new("s_w_id", DataType::Int),
            ColumnDef::new("s_i_id", DataType::Int),
            ColumnDef::new("s_quantity", DataType::Int),
            ColumnDef::new("s_ytd", DataType::Int),
        ],
        &["s_w_id", "s_i_id"],
    )
}

/// All nine table specs for a given warehouse count, in creation order.
pub fn table_specs(warehouses: u32) -> Vec<TableSpec> {
    let by_wh = Partitioner::by_warehouse(0);
    vec![
        TableSpec::new(warehouse_schema(), warehouses, by_wh),
        TableSpec::new(district_schema(), warehouses, by_wh),
        TableSpec::new(customer_schema(), warehouses, by_wh)
            .with_secondary(SecondaryIndexSpec::ordered("cust_by_name", vec![0, 1, 4])),
        TableSpec::new(history_schema(), warehouses, by_wh),
        TableSpec::new(neworder_schema(), warehouses, by_wh),
        TableSpec::new(order_schema(), warehouses, by_wh),
        TableSpec::new(orderline_schema(), warehouses, by_wh),
        TableSpec::new(item_schema(), 1, Partitioner::Single),
        TableSpec::new(stock_schema(), warehouses, by_wh),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_name_matches_spec_examples() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn specs_cover_nine_tables() {
        let specs = table_specs(4);
        assert_eq!(specs.len(), 9);
        let names: Vec<&str> = specs.iter().map(|s| s.schema.name()).collect();
        assert!(names.contains(&"warehouse"));
        assert!(names.contains(&"orderline"));
        // item is a single-partition reference table
        let item = specs.iter().find(|s| s.schema.name() == "item").unwrap();
        assert_eq!(item.partitions, 1);
        // customer carries the last-name index
        let cust = specs
            .iter()
            .find(|s| s.schema.name() == "customer")
            .unwrap();
        assert_eq!(cust.secondaries.len(), 1);
    }

    #[test]
    fn config_totals() {
        let cfg = TpccConfig::small();
        assert_eq!(cfg.total_customers(), 2 * 2 * 30);
    }

    #[test]
    fn schemas_have_leading_partition_column_in_pk() {
        for spec in table_specs(2) {
            let pk = spec.schema.primary_key();
            assert!(!pk.is_empty(), "{} has no pk", spec.schema.name());
            if spec.partitioner != Partitioner::Single {
                assert_eq!(pk[0], 0, "{} must lead pk with w_id", spec.schema.name());
            }
        }
    }
}
