//! TPC-C loader: populates a [`Store`] and exposes typed handles.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use anydb_common::{DbResult, PartitionId, Rid, Tuple, Value};
use anydb_storage::catalog::TableStats;
use anydb_storage::key::{IndexKey, KeyValue};
use anydb_storage::{Store, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{last_name, table_specs, TpccConfig};

/// US state codes used for customer/warehouse states. A fixed fraction
/// starts with 'A' so CH-benCHmark Q3's `state LIKE 'A%'` predicate has
/// predictable selectivity (4 of 20 ≈ 20%).
const STATES: [&str; 20] = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "IL", "IN", "KY", "MD", "NY", "OH",
    "PA", "TX", "UT", "WA",
];

/// A loaded TPC-C database: the store plus typed table handles.
pub struct TpccDb {
    /// The physical store (shared with engines).
    pub store: Arc<Store>,
    /// Scale configuration used at load time.
    pub cfg: TpccConfig,
    /// WAREHOUSE handle.
    pub warehouse: Arc<Table>,
    /// DISTRICT handle.
    pub district: Arc<Table>,
    /// CUSTOMER handle.
    pub customer: Arc<Table>,
    /// HISTORY handle.
    pub history: Arc<Table>,
    /// NEW-ORDER handle.
    pub neworder: Arc<Table>,
    /// ORDER handle.
    pub orders: Arc<Table>,
    /// ORDER-LINE handle.
    pub orderline: Arc<Table>,
    /// ITEM handle.
    pub item: Arc<Table>,
    /// STOCK handle.
    pub stock: Arc<Table>,
    /// Allocator for the history surrogate key.
    next_history_id: AtomicI64,
}

impl TpccDb {
    /// Creates the schema and loads data per `cfg`. Deterministic for a
    /// given `(cfg, seed)`.
    pub fn load(cfg: TpccConfig, seed: u64) -> DbResult<Self> {
        let store = Arc::new(Store::new());
        for spec in table_specs(cfg.warehouses) {
            store.create_table(spec)?;
        }
        let db = Self {
            warehouse: store.table_by_name("warehouse")?,
            district: store.table_by_name("district")?,
            customer: store.table_by_name("customer")?,
            history: store.table_by_name("history")?,
            neworder: store.table_by_name("neworder")?,
            orders: store.table_by_name("orders")?,
            orderline: store.table_by_name("orderline")?,
            item: store.table_by_name("item")?,
            stock: store.table_by_name("stock")?,
            store,
            cfg,
            next_history_id: AtomicI64::new(0),
        };
        db.populate(seed)?;
        db.refresh_stats();
        Ok(db)
    }

    fn populate(&self, seed: u64) -> DbResult<()> {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = &self.cfg;

        for i in 1..=cfg.items as i64 {
            self.item.insert(Tuple::new(vec![
                Value::Int(i),
                Value::from(format!("item-{i}")),
                Value::Float(rng.random_range(1.0..100.0)),
            ]))?;
        }

        for w in 1..=cfg.warehouses as i64 {
            let w_state = STATES[rng.random_range(0..STATES.len())];
            self.warehouse.insert(Tuple::new(vec![
                Value::Int(w),
                Value::from(format!("wh-{w}")),
                Value::str(w_state),
                Value::Float(300_000.0),
            ]))?;

            for i in 1..=cfg.items as i64 {
                self.stock.insert(Tuple::new(vec![
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.random_range(10..100)),
                    Value::Int(0),
                ]))?;
            }

            for d in 1..=cfg.districts_per_warehouse as i64 {
                self.district.insert(Tuple::new(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::from(format!("dist-{w}-{d}")),
                    Value::Float(30_000.0),
                    Value::Int(cfg.orders_per_district as i64 + 1),
                ]))?;

                for c in 1..=cfg.customers_per_district as i64 {
                    // Spec: first 1000 customers get sequential last names,
                    // the rest NURand-distributed. At reduced scale use the
                    // same rule against the configured count.
                    let name_num = if c <= 1000 {
                        (c - 1) as u64 % 1000
                    } else {
                        rng.random_range(0..1000)
                    };
                    let state = STATES[rng.random_range(0..STATES.len())];
                    self.customer.insert(Tuple::new(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::from(format!("first-{c}")),
                        Value::from(last_name(name_num)),
                        Value::str(state),
                        Value::Float(-10.0),
                        Value::Float(10.0),
                        Value::Int(1),
                        Value::from("customer-data-padding-to-make-rows-realistic"),
                    ]))?;
                }

                // Pre-loaded order backlog.
                let open_from = ((cfg.orders_per_district as f64) * (1.0 - cfg.open_order_fraction))
                    .floor() as i64;
                for o in 1..=cfg.orders_per_district as i64 {
                    let c_id = rng.random_range(1..=cfg.customers_per_district as i64);
                    let year = rng.random_range(2004..=2011);
                    let entry_d =
                        year * 10_000 + rng.random_range(1..=12) * 100 + rng.random_range(1..=28);
                    let open = o > open_from;
                    self.orders.insert(Tuple::new(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o),
                        Value::Int(c_id),
                        Value::Int(entry_d),
                        if open {
                            Value::Null
                        } else {
                            Value::Int(rng.random_range(1..=10))
                        },
                        Value::Int(cfg.lines_per_order as i64),
                    ]))?;
                    if open {
                        self.neworder.insert(Tuple::new(vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(o),
                        ]))?;
                    }
                    for l in 1..=cfg.lines_per_order as i64 {
                        self.orderline.insert(Tuple::new(vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(o),
                            Value::Int(l),
                            Value::Int(rng.random_range(1..=cfg.items as i64)),
                            Value::Int(rng.random_range(1..=10)),
                            Value::Float(rng.random_range(1.0..100.0)),
                        ]))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Refreshes catalog statistics from live row counts.
    pub fn refresh_stats(&self) {
        for table in self.store.tables() {
            let rows = table.row_count() as u64;
            // Sample a tuple for the average size (uniform rows).
            let avg = table
                .partition(PartitionId(0))
                .ok()
                .and_then(|p| p.read_tuple(0).ok())
                .map(|(t, _)| t.wire_size() as u64)
                .unwrap_or(32);
            self.store.catalog().set_stats(
                table.id(),
                TableStats {
                    rows,
                    avg_tuple_bytes: avg,
                },
            );
        }
    }

    /// Partition holding warehouse `w` (1-based).
    pub fn partition_of_warehouse(&self, w: i64) -> PartitionId {
        PartitionId(((w - 1).rem_euclid(self.cfg.warehouses as i64)) as u32)
    }

    /// RID of warehouse `w`.
    pub fn warehouse_rid(&self, w: i64) -> DbResult<Rid> {
        self.warehouse
            .get_rid(&IndexKey::new(vec![KeyValue::Int(w)]))
    }

    /// RID of district `(w, d)`.
    pub fn district_rid(&self, w: i64, d: i64) -> DbResult<Rid> {
        self.district
            .get_rid(&IndexKey::new(vec![KeyValue::Int(w), KeyValue::Int(d)]))
    }

    /// RID of customer `(w, d, c)`.
    pub fn customer_rid(&self, w: i64, d: i64, c: i64) -> DbResult<Rid> {
        self.customer.get_rid(&IndexKey::new(vec![
            KeyValue::Int(w),
            KeyValue::Int(d),
            KeyValue::Int(c),
        ]))
    }

    /// RIDs of customers with the given last name in `(w, d)`, via the
    /// `cust_by_name` secondary index.
    pub fn customers_by_last_name(&self, w: i64, d: i64, last: &str) -> DbResult<Vec<Rid>> {
        self.customer.lookup_secondary(
            "cust_by_name",
            self.partition_of_warehouse(w),
            &IndexKey::new(vec![
                KeyValue::Int(w),
                KeyValue::Int(d),
                KeyValue::Str(last.into()),
            ]),
        )
    }

    /// Allocates the next history surrogate id.
    pub fn next_history_id(&self) -> i64 {
        self.next_history_id.fetch_add(1, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::super::cols;
    use super::*;

    fn db() -> TpccDb {
        TpccDb::load(TpccConfig::small(), 42).unwrap()
    }

    #[test]
    fn loads_expected_cardinalities() {
        let db = db();
        let cfg = &db.cfg;
        assert_eq!(db.warehouse.row_count(), cfg.warehouses as usize);
        assert_eq!(
            db.district.row_count(),
            (cfg.warehouses * cfg.districts_per_warehouse) as usize
        );
        assert_eq!(db.customer.row_count(), cfg.total_customers() as usize);
        assert_eq!(db.item.row_count(), cfg.items as usize);
        assert_eq!(db.stock.row_count(), (cfg.warehouses * cfg.items) as usize);
        let orders =
            (cfg.warehouses * cfg.districts_per_warehouse * cfg.orders_per_district) as usize;
        assert_eq!(db.orders.row_count(), orders);
        assert_eq!(
            db.orderline.row_count(),
            orders * cfg.lines_per_order as usize
        );
        // ~30% open orders
        let open = db.neworder.row_count() as f64 / orders as f64;
        assert!((0.25..=0.35).contains(&open), "open fraction {open}");
    }

    #[test]
    fn load_is_deterministic() {
        let a = TpccDb::load(TpccConfig::small(), 7).unwrap();
        let b = TpccDb::load(TpccConfig::small(), 7).unwrap();
        let rid = a.customer_rid(1, 1, 5).unwrap();
        assert_eq!(
            a.customer.read(rid).unwrap().0,
            b.customer.read(rid).unwrap().0
        );
    }

    #[test]
    fn pk_lookups_resolve() {
        let db = db();
        let w = db.warehouse_rid(1).unwrap();
        let (t, _) = db.warehouse.read(w).unwrap();
        assert_eq!(t.get(cols::warehouse::W_ID), &Value::Int(1));
        let d = db.district_rid(2, 1).unwrap();
        let (t, _) = db.district.read(d).unwrap();
        assert_eq!(t.get(cols::district::D_W_ID), &Value::Int(2));
    }

    #[test]
    fn lastname_index_finds_customers() {
        let db = db();
        // Customer 1 of (1,1) got name_num 0 => BARBARBAR.
        let rids = db.customers_by_last_name(1, 1, "BARBARBAR").unwrap();
        assert!(!rids.is_empty());
        for rid in rids {
            let (t, _) = db.customer.read(rid).unwrap();
            assert_eq!(t.get(cols::customer::C_LAST), &Value::str("BARBARBAR"));
        }
    }

    #[test]
    fn warehouses_partitioned_one_per_partition() {
        let db = db();
        for w in 1..=db.cfg.warehouses as i64 {
            let rid = db.warehouse_rid(w).unwrap();
            assert_eq!(rid.partition, db.partition_of_warehouse(w));
        }
    }

    #[test]
    fn stats_are_refreshed() {
        let db = db();
        let snap = db.store.catalog().snapshot();
        assert_eq!(
            snap.estimated_rows(db.customer.id()),
            db.cfg.total_customers()
        );
        assert!(snap.stats(db.customer.id()).unwrap().avg_tuple_bytes > 0);
    }

    #[test]
    fn history_ids_are_unique() {
        let db = db();
        let a = db.next_history_id();
        let b = db.next_history_id();
        assert_ne!(a, b);
    }
}
