//! Transaction parameter generators for payment and new-order.
//!
//! Skew is injected through the warehouse distribution: the paper's
//! "skewed OLTP" phases route *100% of payments to one warehouse* (§3.2),
//! which [`anydb_common::dist::HotSpot::single`] models; the partitionable
//! phases use a uniform warehouse distribution.

use anydb_common::dist::{HotSpot, NuRand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::{last_name, TpccConfig};

/// How the payment transaction selects its customer (TPC-C §2.5.1.2:
/// 60% by last name, 40% by id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomerSelector {
    /// Direct customer id (NURand 1023).
    ById(i64),
    /// Last-name lookup (NURand 255 over syllable names) — this is the
    /// "long range scan" sub-sequence of Figure 4 (d).
    ByLastName(String),
}

/// Parameters of one TPC-C payment transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentParams {
    /// Home warehouse.
    pub w_id: i64,
    /// District within the warehouse.
    pub d_id: i64,
    /// Customer's warehouse (== `w_id`; remote payments are disabled to
    /// keep the partitionable phases perfectly partitionable, like the
    /// paper's setup).
    pub c_w_id: i64,
    /// Customer's district.
    pub c_d_id: i64,
    /// Customer selection.
    pub customer: CustomerSelector,
    /// Payment amount.
    pub amount: f64,
    /// Date stamp (yyyymmdd).
    pub date: i64,
}

/// Parameters of one TPC-C new-order transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct NewOrderParams {
    /// Home warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Ordering customer.
    pub c_id: i64,
    /// `(item id, quantity)` per line.
    pub lines: Vec<(i64, i64)>,
    /// Supply warehouse per line, parallel to `lines`. Equal to `w_id`
    /// for home-supplied lines; a remote warehouse makes the new-order a
    /// *cross-warehouse* transaction (TPC-C §2.4.1.5 models 1% remote
    /// lines; the sharded engine's 2PC path is exercised through this).
    pub supply: Vec<i64>,
    /// Entry date (yyyymmdd).
    pub entry_date: i64,
    /// TPC-C §2.4.1.4: 1% of new-orders carry an invalid item and must
    /// roll back.
    pub rollback: bool,
}

/// Generates payment parameters under a warehouse skew.
pub struct PaymentGen {
    cfg: TpccConfig,
    warehouse_dist: HotSpot,
    cust_id: NuRand,
    cust_name: NuRand,
    rng: StdRng,
}

impl PaymentGen {
    /// New generator; `warehouse_dist` must cover `cfg.warehouses` items.
    pub fn new(cfg: TpccConfig, warehouse_dist: HotSpot, seed: u64) -> Self {
        let cust_id = NuRand::new(
            1023,
            1,
            cfg.customers_per_district as u64,
            cfg.c_for_customer,
        );
        let cust_name = NuRand::last_name(cfg.c_for_lastname);
        Self {
            cfg,
            warehouse_dist,
            cust_id,
            cust_name,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next payment.
    #[allow(clippy::should_implement_trait)] // generator API, not an Iterator
    pub fn next(&mut self) -> PaymentParams {
        let w_id = self.warehouse_dist.sample(&mut self.rng) as i64 + 1;
        self.next_for_warehouse(w_id)
    }

    /// Samples only the home warehouse (cheap: no allocation). Partitioned
    /// clients use this to decide routing before building full parameters.
    pub fn next_warehouse(&mut self) -> i64 {
        self.warehouse_dist.sample(&mut self.rng) as i64 + 1
    }

    /// Next payment pinned to a warehouse.
    pub fn next_for_warehouse(&mut self, w_id: i64) -> PaymentParams {
        let d_id = self
            .rng
            .random_range(1..=self.cfg.districts_per_warehouse as i64);
        let customer = if self.rng.random_bool(0.6) {
            // At reduced customer scale not every syllable name exists;
            // clamp to the names the loader actually created.
            let max_name = (self.cfg.customers_per_district as u64).min(1000) - 1;
            let num = self.cust_name.sample(&mut self.rng).min(max_name);
            CustomerSelector::ByLastName(last_name(num))
        } else {
            CustomerSelector::ById(self.cust_id.sample(&mut self.rng) as i64)
        };
        PaymentParams {
            w_id,
            d_id,
            c_w_id: w_id,
            c_d_id: d_id,
            customer,
            amount: self.rng.random_range(1.0..5000.0),
            date: 20200101, // 2020-01-01
        }
    }
}

/// Generates new-order parameters under a warehouse skew.
pub struct NewOrderGen {
    cfg: TpccConfig,
    warehouse_dist: HotSpot,
    cust_id: NuRand,
    item_id: NuRand,
    remote_item_prob: f64,
    rng: StdRng,
}

impl NewOrderGen {
    /// New generator.
    pub fn new(cfg: TpccConfig, warehouse_dist: HotSpot, seed: u64) -> Self {
        let cust_id = NuRand::new(
            1023,
            1,
            cfg.customers_per_district as u64,
            cfg.c_for_customer,
        );
        let item_id = NuRand::new(8191, 1, cfg.items as u64, cfg.c_for_item);
        Self {
            cfg,
            warehouse_dist,
            cust_id,
            item_id,
            remote_item_prob: 0.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Gives each order line probability `p` of drawing a *remote*
    /// supply warehouse (uniform over the others; no-op with a single
    /// warehouse). Zero by default so the partitionable phases stay
    /// perfectly partitionable.
    pub fn with_remote_mix(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        self.remote_item_prob = p;
        self
    }

    /// Next new-order.
    #[allow(clippy::should_implement_trait)] // generator API, not an Iterator
    pub fn next(&mut self) -> NewOrderParams {
        let w_id = self.warehouse_dist.sample(&mut self.rng) as i64 + 1;
        self.next_for_warehouse(w_id)
    }

    /// Samples only the home warehouse (cheap: no allocation).
    pub fn next_warehouse(&mut self) -> i64 {
        self.warehouse_dist.sample(&mut self.rng) as i64 + 1
    }

    /// Next new-order pinned to a warehouse.
    pub fn next_for_warehouse(&mut self, w_id: i64) -> NewOrderParams {
        let d_id = self
            .rng
            .random_range(1..=self.cfg.districts_per_warehouse as i64);
        let c_id = self.cust_id.sample(&mut self.rng) as i64;
        let ol_cnt = self.rng.random_range(5..=15);
        let mut lines = Vec::with_capacity(ol_cnt);
        let mut supply = Vec::with_capacity(ol_cnt);
        let warehouses = self.cfg.warehouses as i64;
        for _ in 0..ol_cnt {
            lines.push((
                self.item_id.sample(&mut self.rng) as i64,
                self.rng.random_range(1..=10),
            ));
            let remote = self.remote_item_prob > 0.0
                && warehouses > 1
                && self.rng.random_bool(self.remote_item_prob);
            supply.push(if remote {
                // Uniform over the other warehouses: skip past w_id.
                let pick = self.rng.random_range(1..warehouses);
                if pick >= w_id {
                    pick + 1
                } else {
                    pick
                }
            } else {
                w_id
            });
        }
        NewOrderParams {
            w_id,
            d_id,
            c_id,
            lines,
            supply,
            entry_date: 20200101, // 2020-01-01
            rollback: self.rng.random_bool(0.01),
        }
    }
}

/// A request from the OLTP client stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnRequest {
    /// TPC-C payment.
    Payment(PaymentParams),
    /// TPC-C new-order.
    NewOrder(NewOrderParams),
}

impl TxnRequest {
    /// Home warehouse of the request.
    pub fn w_id(&self) -> i64 {
        match self {
            TxnRequest::Payment(p) => p.w_id,
            TxnRequest::NewOrder(n) => n.w_id,
        }
    }
}

/// Generates a payment/new-order mix.
pub struct MixGen {
    payment: PaymentGen,
    neworder: NewOrderGen,
    payment_fraction: f64,
    rng: StdRng,
}

impl MixGen {
    /// `payment_fraction` of requests are payments, the rest new-orders.
    pub fn new(cfg: TpccConfig, warehouse_dist: HotSpot, payment_fraction: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&payment_fraction));
        Self {
            payment: PaymentGen::new(cfg.clone(), warehouse_dist, seed ^ 0x5eed),
            neworder: NewOrderGen::new(cfg, warehouse_dist, seed ^ 0xdead),
            payment_fraction,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Passes a remote supply-warehouse probability through to the
    /// new-order generator (see [`NewOrderGen::with_remote_mix`]).
    pub fn with_remote_mix(mut self, p: f64) -> Self {
        self.neworder = self.neworder.with_remote_mix(p);
        self
    }

    /// Next request.
    #[allow(clippy::should_implement_trait)] // generator API, not an Iterator
    pub fn next(&mut self) -> TxnRequest {
        if self.rng.random_bool(self.payment_fraction) {
            TxnRequest::Payment(self.payment.next())
        } else {
            TxnRequest::NewOrder(self.neworder.next())
        }
    }

    /// Samples only the home warehouse of the next request (no
    /// allocation). Follow with [`MixGen::next_for_warehouse`].
    pub fn next_warehouse(&mut self) -> i64 {
        self.payment.next_warehouse()
    }

    /// Next request pinned to a warehouse.
    pub fn next_for_warehouse(&mut self, w_id: i64) -> TxnRequest {
        if self.rng.random_bool(self.payment_fraction) {
            TxnRequest::Payment(self.payment.next_for_warehouse(w_id))
        } else {
            TxnRequest::NewOrder(self.neworder.next_for_warehouse(w_id))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TpccConfig {
        TpccConfig::small()
    }

    #[test]
    fn payment_params_in_bounds() {
        let c = cfg();
        let mut g = PaymentGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 1);
        for _ in 0..1000 {
            let p = g.next();
            assert!((1..=c.warehouses as i64).contains(&p.w_id));
            assert!((1..=c.districts_per_warehouse as i64).contains(&p.d_id));
            assert_eq!(p.c_w_id, p.w_id);
            assert!(p.amount >= 1.0 && p.amount < 5000.0);
            if let CustomerSelector::ById(id) = p.customer {
                assert!((1..=c.customers_per_district as i64).contains(&id));
            }
        }
    }

    #[test]
    fn payment_selector_mix_is_roughly_60_40() {
        let c = cfg();
        let mut g = PaymentGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 2);
        let mut by_name = 0;
        for _ in 0..10_000 {
            if matches!(g.next().customer, CustomerSelector::ByLastName(_)) {
                by_name += 1;
            }
        }
        let frac = by_name as f64 / 10_000.0;
        assert!((0.55..=0.65).contains(&frac), "by-name fraction {frac}");
    }

    #[test]
    fn single_warehouse_skew_hits_warehouse_one() {
        let c = cfg();
        let mut g = PaymentGen::new(c.clone(), HotSpot::single(c.warehouses as u64), 3);
        for _ in 0..100 {
            assert_eq!(g.next().w_id, 1);
        }
    }

    #[test]
    fn neworder_params_in_bounds() {
        let c = cfg();
        let mut g = NewOrderGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 4);
        for _ in 0..1000 {
            let n = g.next();
            assert!((5..=15).contains(&n.lines.len()));
            for (item, qty) in &n.lines {
                assert!((1..=c.items as i64).contains(item));
                assert!((1..=10).contains(qty));
            }
        }
    }

    #[test]
    fn neworder_supply_is_home_by_default() {
        let c = cfg();
        let mut g = NewOrderGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 11);
        for _ in 0..200 {
            let n = g.next();
            assert_eq!(n.supply.len(), n.lines.len());
            assert!(n.supply.iter().all(|&s| s == n.w_id));
        }
    }

    #[test]
    fn remote_mix_draws_other_warehouses_at_the_requested_rate() {
        let c = cfg();
        assert!(c.warehouses > 1, "needs several warehouses to be remote");
        let mut g = NewOrderGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 12)
            .with_remote_mix(0.3);
        let (mut total, mut remote) = (0usize, 0usize);
        for _ in 0..2000 {
            let n = g.next();
            assert_eq!(n.supply.len(), n.lines.len());
            for &s in &n.supply {
                assert!((1..=c.warehouses as i64).contains(&s));
                total += 1;
                if s != n.w_id {
                    remote += 1;
                }
            }
        }
        let frac = remote as f64 / total as f64;
        assert!((0.25..=0.35).contains(&frac), "remote fraction {frac}");
    }

    #[test]
    fn neworder_rollback_rate_is_about_one_percent() {
        let c = cfg();
        let mut g = NewOrderGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 5);
        let rollbacks = (0..20_000).filter(|_| g.next().rollback).count();
        let frac = rollbacks as f64 / 20_000.0;
        assert!((0.005..=0.02).contains(&frac), "rollback fraction {frac}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let c = cfg();
        let mut a = PaymentGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 9);
        let mut b = PaymentGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 9);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn mix_respects_fraction() {
        let c = cfg();
        let mut g = MixGen::new(c.clone(), HotSpot::uniform(c.warehouses as u64), 0.5, 6);
        let payments = (0..10_000)
            .filter(|_| matches!(g.next(), TxnRequest::Payment(_)))
            .count();
        let frac = payments as f64 / 10_000.0;
        assert!((0.45..=0.55).contains(&frac), "payment fraction {frac}");
    }

    #[test]
    fn request_w_id_accessor() {
        let c = cfg();
        let mut g = MixGen::new(c.clone(), HotSpot::single(c.warehouses as u64), 0.5, 7);
        for _ in 0..50 {
            assert_eq!(g.next().w_id(), 1);
        }
    }
}
