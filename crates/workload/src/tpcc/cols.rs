//! Column-position constants for the TPC-C schemas.
//!
//! Executors address tuples positionally in hot paths; these constants
//! keep those positions in one reviewed place. Each block mirrors the
//! corresponding `*_schema()` in the parent module (asserted by tests).

/// WAREHOUSE columns.
pub mod warehouse {
    /// w_id
    pub const W_ID: usize = 0;
    /// w_name
    pub const W_NAME: usize = 1;
    /// w_state
    pub const W_STATE: usize = 2;
    /// w_ytd
    pub const W_YTD: usize = 3;
}

/// DISTRICT columns.
pub mod district {
    /// d_w_id
    pub const D_W_ID: usize = 0;
    /// d_id
    pub const D_ID: usize = 1;
    /// d_name
    pub const D_NAME: usize = 2;
    /// d_ytd
    pub const D_YTD: usize = 3;
    /// d_next_o_id
    pub const D_NEXT_O_ID: usize = 4;
}

/// CUSTOMER columns.
pub mod customer {
    /// c_w_id
    pub const C_W_ID: usize = 0;
    /// c_d_id
    pub const C_D_ID: usize = 1;
    /// c_id
    pub const C_ID: usize = 2;
    /// c_first
    pub const C_FIRST: usize = 3;
    /// c_last
    pub const C_LAST: usize = 4;
    /// c_state
    pub const C_STATE: usize = 5;
    /// c_balance
    pub const C_BALANCE: usize = 6;
    /// c_ytd_payment
    pub const C_YTD_PAYMENT: usize = 7;
    /// c_payment_cnt
    pub const C_PAYMENT_CNT: usize = 8;
    /// c_data
    pub const C_DATA: usize = 9;
}

/// HISTORY columns.
pub mod history {
    /// h_w_id
    pub const H_W_ID: usize = 0;
    /// h_id (surrogate)
    pub const H_ID: usize = 1;
    /// h_d_id
    pub const H_D_ID: usize = 2;
    /// h_c_id
    pub const H_C_ID: usize = 3;
    /// h_date
    pub const H_DATE: usize = 4;
    /// h_amount
    pub const H_AMOUNT: usize = 5;
}

/// NEW-ORDER columns.
pub mod neworder {
    /// no_w_id
    pub const NO_W_ID: usize = 0;
    /// no_d_id
    pub const NO_D_ID: usize = 1;
    /// no_o_id
    pub const NO_O_ID: usize = 2;
}

/// ORDER columns.
pub mod orders {
    /// o_w_id
    pub const O_W_ID: usize = 0;
    /// o_d_id
    pub const O_D_ID: usize = 1;
    /// o_id
    pub const O_ID: usize = 2;
    /// o_c_id
    pub const O_C_ID: usize = 3;
    /// o_entry_d
    pub const O_ENTRY_D: usize = 4;
    /// o_carrier_id
    pub const O_CARRIER_ID: usize = 5;
    /// o_ol_cnt
    pub const O_OL_CNT: usize = 6;
}

/// ORDER-LINE columns.
pub mod orderline {
    /// ol_w_id
    pub const OL_W_ID: usize = 0;
    /// ol_d_id
    pub const OL_D_ID: usize = 1;
    /// ol_o_id
    pub const OL_O_ID: usize = 2;
    /// ol_number
    pub const OL_NUMBER: usize = 3;
    /// ol_i_id
    pub const OL_I_ID: usize = 4;
    /// ol_quantity
    pub const OL_QUANTITY: usize = 5;
    /// ol_amount
    pub const OL_AMOUNT: usize = 6;
}

/// ITEM columns.
pub mod item {
    /// i_id
    pub const I_ID: usize = 0;
    /// i_name
    pub const I_NAME: usize = 1;
    /// i_price
    pub const I_PRICE: usize = 2;
}

/// STOCK columns.
pub mod stock {
    /// s_w_id
    pub const S_W_ID: usize = 0;
    /// s_i_id
    pub const S_I_ID: usize = 1;
    /// s_quantity
    pub const S_QUANTITY: usize = 2;
    /// s_ytd
    pub const S_YTD: usize = 3;
}

#[cfg(test)]
mod tests {
    use crate::tpcc;

    /// Every constant block must agree with its schema definition.
    #[test]
    fn constants_match_schemas() {
        let checks: Vec<(anydb_common::Schema, Vec<(&str, usize)>)> = vec![
            (
                tpcc::warehouse_schema(),
                vec![
                    ("w_id", super::warehouse::W_ID),
                    ("w_ytd", super::warehouse::W_YTD),
                ],
            ),
            (
                tpcc::district_schema(),
                vec![
                    ("d_ytd", super::district::D_YTD),
                    ("d_next_o_id", super::district::D_NEXT_O_ID),
                ],
            ),
            (
                tpcc::customer_schema(),
                vec![
                    ("c_last", super::customer::C_LAST),
                    ("c_state", super::customer::C_STATE),
                    ("c_balance", super::customer::C_BALANCE),
                    ("c_data", super::customer::C_DATA),
                ],
            ),
            (
                tpcc::history_schema(),
                vec![("h_amount", super::history::H_AMOUNT)],
            ),
            (
                tpcc::neworder_schema(),
                vec![("no_o_id", super::neworder::NO_O_ID)],
            ),
            (
                tpcc::order_schema(),
                vec![
                    ("o_c_id", super::orders::O_C_ID),
                    ("o_entry_d", super::orders::O_ENTRY_D),
                    ("o_carrier_id", super::orders::O_CARRIER_ID),
                ],
            ),
            (
                tpcc::orderline_schema(),
                vec![("ol_amount", super::orderline::OL_AMOUNT)],
            ),
            (tpcc::item_schema(), vec![("i_price", super::item::I_PRICE)]),
            (
                tpcc::stock_schema(),
                vec![("s_quantity", super::stock::S_QUANTITY)],
            ),
        ];
        for (schema, cols) in checks {
            for (name, idx) in cols {
                assert_eq!(
                    schema.column_index(name).unwrap(),
                    idx,
                    "{}::{name}",
                    schema.name()
                );
            }
        }
    }
}
