//! The evolving workload of Figure 1 and the OLTP schedule of Figure 5.
//!
//! Figure 1 runs twelve phases: partitionable OLTP (0–2), skewed OLTP
//! (3–5), skewed HTAP (6–8), partitionable HTAP (9–11). Figure 5 runs the
//! first six (OLTP only). A phase determines the warehouse access
//! distribution and whether a concurrent OLAP query stream is active.

use anydb_common::dist::HotSpot;

/// The four workload regimes of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// Uniform warehouse access, no OLAP.
    OltpPartitionable,
    /// 100% of transactions on warehouse 1, no OLAP.
    OltpSkewed,
    /// Skewed OLTP plus a concurrent CH-Q3 stream.
    HtapSkewed,
    /// Uniform OLTP plus a concurrent CH-Q3 stream.
    HtapPartitionable,
    /// The analytics batch window: uniform (light) OLTP under several
    /// concurrent CH-Q3 streams — the "night" regime of the
    /// day-in-the-life schedule.
    OlapHeavy,
}

impl PhaseKind {
    /// The warehouse distribution for this regime.
    pub fn warehouse_dist(self, warehouses: u32) -> HotSpot {
        match self {
            PhaseKind::OltpPartitionable | PhaseKind::HtapPartitionable | PhaseKind::OlapHeavy => {
                HotSpot::uniform(warehouses as u64)
            }
            PhaseKind::OltpSkewed | PhaseKind::HtapSkewed => HotSpot::single(warehouses as u64),
        }
    }

    /// Whether a concurrent OLAP stream runs.
    pub fn has_olap(self) -> bool {
        self.olap_streams() > 0
    }

    /// How many concurrent OLAP query streams the regime carries: 0 for
    /// pure OLTP, 1 for the HTAP phases, several for the OLAP-heavy batch
    /// window (engines scale their query admission accordingly).
    pub fn olap_streams(self) -> usize {
        match self {
            PhaseKind::OltpPartitionable | PhaseKind::OltpSkewed => 0,
            PhaseKind::HtapSkewed | PhaseKind::HtapPartitionable => 1,
            PhaseKind::OlapHeavy => 4,
        }
    }

    /// Whether OLTP access is skewed to one warehouse.
    pub fn is_skewed(self) -> bool {
        matches!(self, PhaseKind::OltpSkewed | PhaseKind::HtapSkewed)
    }

    /// Human-readable name matching the figure labels.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::OltpPartitionable => "OLTP partitionable",
            PhaseKind::OltpSkewed => "OLTP skewed",
            PhaseKind::HtapSkewed => "HTAP skewed",
            PhaseKind::HtapPartitionable => "HTAP partitionable",
            PhaseKind::OlapHeavy => "OLAP heavy",
        }
    }
}

/// One phase of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Position on the x-axis.
    pub index: u32,
    /// Regime.
    pub kind: PhaseKind,
}

/// An ordered list of phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSchedule {
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// The 12-phase schedule of Figure 1.
    pub fn figure1() -> Self {
        let kinds = [
            PhaseKind::OltpPartitionable,
            PhaseKind::OltpSkewed,
            PhaseKind::HtapSkewed,
            PhaseKind::HtapPartitionable,
        ];
        Self {
            phases: kinds
                .iter()
                .flat_map(|&k| std::iter::repeat_n(k, 3))
                .enumerate()
                .map(|(i, kind)| Phase {
                    index: i as u32,
                    kind,
                })
                .collect(),
        }
    }

    /// A 12-phase operational day, the morphing controller's end-to-end
    /// scenario: partitionable OLTP through the morning, a skewed midday
    /// rush (everyone hits the hot warehouse), an HTAP afternoon (reports
    /// start while the rush tails off, then access spreads out again),
    /// and an OLAP-heavy night batch window. No single static strategy is
    /// right for the whole day — that is the point.
    pub fn day_in_the_life() -> Self {
        let blocks: [(PhaseKind, usize); 5] = [
            (PhaseKind::OltpPartitionable, 3),
            (PhaseKind::OltpSkewed, 2),
            (PhaseKind::HtapSkewed, 2),
            (PhaseKind::HtapPartitionable, 2),
            (PhaseKind::OlapHeavy, 3),
        ];
        Self {
            phases: blocks
                .iter()
                .flat_map(|&(k, n)| std::iter::repeat_n(k, n))
                .enumerate()
                .map(|(i, kind)| Phase {
                    index: i as u32,
                    kind,
                })
                .collect(),
        }
    }

    /// The 6-phase OLTP-only schedule of Figure 5.
    pub fn figure5() -> Self {
        Self {
            phases: (0..6)
                .map(|i| Phase {
                    index: i,
                    kind: if i < 3 {
                        PhaseKind::OltpPartitionable
                    } else {
                        PhaseKind::OltpSkewed
                    },
                })
                .collect(),
        }
    }

    /// The phases in order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn figure1_has_twelve_phases_in_order() {
        let s = PhaseSchedule::figure1();
        assert_eq!(s.len(), 12);
        assert_eq!(s.phases()[0].kind, PhaseKind::OltpPartitionable);
        assert_eq!(s.phases()[3].kind, PhaseKind::OltpSkewed);
        assert_eq!(s.phases()[6].kind, PhaseKind::HtapSkewed);
        assert_eq!(s.phases()[9].kind, PhaseKind::HtapPartitionable);
        assert_eq!(s.phases()[11].index, 11);
    }

    #[test]
    fn figure5_is_oltp_only() {
        let s = PhaseSchedule::figure5();
        assert_eq!(s.len(), 6);
        assert!(s.phases().iter().all(|p| !p.kind.has_olap()));
        assert!(s.phases()[3].kind.is_skewed());
        assert!(!s.phases()[2].kind.is_skewed());
    }

    #[test]
    fn skewed_dist_hits_warehouse_zero_only() {
        let d = PhaseKind::OltpSkewed.warehouse_dist(4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0);
        }
    }

    #[test]
    fn partitionable_dist_covers_warehouses() {
        let d = PhaseKind::HtapPartitionable.warehouse_dist(4);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(PhaseKind::HtapSkewed.label(), "HTAP skewed");
        assert!(PhaseKind::HtapSkewed.has_olap());
    }

    #[test]
    fn olap_streams_scale_with_regime() {
        assert_eq!(PhaseKind::OltpPartitionable.olap_streams(), 0);
        assert_eq!(PhaseKind::OltpSkewed.olap_streams(), 0);
        assert_eq!(PhaseKind::HtapSkewed.olap_streams(), 1);
        assert_eq!(PhaseKind::HtapPartitionable.olap_streams(), 1);
        assert!(PhaseKind::OlapHeavy.olap_streams() > 1);
        assert!(PhaseKind::OlapHeavy.has_olap());
        assert!(!PhaseKind::OlapHeavy.is_skewed());
    }

    #[test]
    fn day_in_the_life_covers_the_regimes_in_order() {
        let s = PhaseSchedule::day_in_the_life();
        assert_eq!(s.len(), 12);
        assert_eq!(s.phases()[0].kind, PhaseKind::OltpPartitionable);
        assert_eq!(s.phases()[3].kind, PhaseKind::OltpSkewed);
        assert_eq!(s.phases()[5].kind, PhaseKind::HtapSkewed);
        assert_eq!(s.phases()[7].kind, PhaseKind::HtapPartitionable);
        assert_eq!(s.phases()[9].kind, PhaseKind::OlapHeavy);
        assert_eq!(s.phases()[11].index, 11);
        // The day must contain both skew regimes and both OLAP loads, or
        // one static strategy could win it end to end.
        assert!(s.phases().iter().any(|p| p.kind.is_skewed()));
        assert!(s.phases().iter().any(|p| !p.kind.is_skewed()));
        assert!(s.phases().iter().any(|p| p.kind.olap_streams() > 1));
        assert!(s.phases().iter().any(|p| !p.kind.has_olap()));
    }
}
