//! Catalog: table metadata and statistics.
//!
//! The catalog is itself "state" in the architecture-less model — Figure 2
//! shows `Catalog+Stats` arriving at an AC via a data stream before it can
//! act as the query optimizer. [`Catalog::snapshot`] produces the
//! self-contained value that gets shipped.

use anydb_common::fxmap::FxHashMap;
use anydb_common::{Schema, TableId};
use parking_lot::RwLock;

use crate::index::SecondaryIndexSpec;
use crate::store::Partitioner;

/// Everything needed to create (or re-create, for recovery) a table.
#[derive(Clone)]
pub struct TableSpec {
    /// Schema including primary key.
    pub schema: Schema,
    /// Number of horizontal partitions.
    pub partitions: u32,
    /// Partition placement function.
    pub partitioner: Partitioner,
    /// Secondary indexes to maintain.
    pub secondaries: Vec<SecondaryIndexSpec>,
}

impl TableSpec {
    /// Spec without secondary indexes.
    pub fn new(schema: Schema, partitions: u32, partitioner: Partitioner) -> Self {
        Self {
            schema,
            partitions,
            partitioner,
            secondaries: Vec::new(),
        }
    }

    /// Adds a secondary index.
    pub fn with_secondary(mut self, spec: SecondaryIndexSpec) -> Self {
        self.secondaries.push(spec);
        self
    }
}

/// Table statistics the query optimizer consumes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableStats {
    /// Total row count at the last refresh.
    pub rows: u64,
    /// Mean tuple wire size in bytes (for transfer estimates).
    pub avg_tuple_bytes: u64,
}

/// A registry of table specs plus refreshable statistics.
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<Vec<CatalogEntry>>,
    by_name: RwLock<FxHashMap<String, TableId>>,
}

struct CatalogEntry {
    id: TableId,
    spec: TableSpec,
    stats: TableStats,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table. Called by `Store::create_table`.
    pub(crate) fn register(&self, id: TableId, spec: TableSpec) {
        let name = spec.schema.name().to_string();
        self.entries.write().push(CatalogEntry {
            id,
            spec,
            stats: TableStats::default(),
        });
        self.by_name.write().insert(name, id);
    }

    /// Id for a table name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.read().get(name).copied()
    }

    /// Spec for a table.
    pub fn spec(&self, id: TableId) -> Option<TableSpec> {
        self.entries
            .read()
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.spec.clone())
    }

    /// Current statistics for a table.
    pub fn stats(&self, id: TableId) -> Option<TableStats> {
        self.entries
            .read()
            .iter()
            .find(|e| e.id == id)
            .map(|e| e.stats.clone())
    }

    /// Updates statistics (loaders and background refresh call this).
    pub fn set_stats(&self, id: TableId, stats: TableStats) {
        if let Some(e) = self.entries.write().iter_mut().find(|e| e.id == id) {
            e.stats = stats;
        }
    }

    /// All table names, in creation order.
    pub fn table_names(&self) -> Vec<String> {
        self.entries
            .read()
            .iter()
            .map(|e| e.spec.schema.name().to_string())
            .collect()
    }

    /// A self-contained snapshot of specs and stats, shippable on a data
    /// stream to whichever AC acts as the QO.
    pub fn snapshot(&self) -> CatalogSnapshot {
        let entries = self.entries.read();
        CatalogSnapshot {
            tables: entries
                .iter()
                .map(|e| (e.id, e.spec.clone(), e.stats.clone()))
                .collect(),
        }
    }
}

/// An immutable catalog snapshot (the `Catalog+Stats` data stream of
/// Figure 2).
#[derive(Clone, Default)]
pub struct CatalogSnapshot {
    /// `(id, spec, stats)` per table.
    pub tables: Vec<(TableId, TableSpec, TableStats)>,
}

impl CatalogSnapshot {
    /// Stats by table id.
    pub fn stats(&self, id: TableId) -> Option<&TableStats> {
        self.tables
            .iter()
            .find(|(t, _, _)| *t == id)
            .map(|(_, _, s)| s)
    }

    /// Estimated rows, defaulting to zero for unknown tables.
    pub fn estimated_rows(&self, id: TableId) -> u64 {
        self.stats(id).map(|s| s.rows).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{ColumnDef, DataType};

    fn spec(name: &str) -> TableSpec {
        TableSpec::new(
            Schema::new(name, vec![ColumnDef::new("id", DataType::Int)], &["id"]),
            2,
            Partitioner::Single,
        )
    }

    #[test]
    fn register_and_lookup() {
        let c = Catalog::new();
        c.register(TableId(0), spec("a"));
        c.register(TableId(1), spec("b"));
        assert_eq!(c.table_id("b"), Some(TableId(1)));
        assert_eq!(c.table_id("x"), None);
        assert_eq!(c.spec(TableId(0)).unwrap().partitions, 2);
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }

    #[test]
    fn stats_roundtrip() {
        let c = Catalog::new();
        c.register(TableId(0), spec("a"));
        assert_eq!(c.stats(TableId(0)).unwrap(), TableStats::default());
        c.set_stats(
            TableId(0),
            TableStats {
                rows: 100,
                avg_tuple_bytes: 64,
            },
        );
        assert_eq!(c.stats(TableId(0)).unwrap().rows, 100);
    }

    #[test]
    fn snapshot_is_self_contained() {
        let c = Catalog::new();
        c.register(TableId(0), spec("a"));
        c.set_stats(
            TableId(0),
            TableStats {
                rows: 7,
                avg_tuple_bytes: 9,
            },
        );
        let snap = c.snapshot();
        assert_eq!(snap.estimated_rows(TableId(0)), 7);
        assert_eq!(snap.estimated_rows(TableId(5)), 0);
        // Mutating the catalog after the snapshot does not affect it.
        c.set_stats(
            TableId(0),
            TableStats {
                rows: 999,
                avg_tuple_bytes: 9,
            },
        );
        assert_eq!(snap.estimated_rows(TableId(0)), 7);
    }

    #[test]
    fn with_secondary_builder() {
        let s = spec("a").with_secondary(SecondaryIndexSpec::ordered("o", vec![0]));
        assert_eq!(s.secondaries.len(), 1);
        assert_eq!(s.secondaries[0].name, "o");
    }
}
