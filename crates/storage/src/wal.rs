//! Write-ahead log.
//!
//! §2.3 of the paper sketches the "naïve" fault-tolerance approach for an
//! architecture-less DBMS: ACs send log *events* to durable storage; on
//! failure the DBMS stops and replays the log. This module is that log: an
//! append-only sequence of records (kept in memory, optionally serialized
//! to the tuple wire format to mimic durable bytes), consumed by
//! [`crate::recovery`].
//!
//! Since PR 8 the record types and their codec live in
//! [`anydb_common::repl`] (re-exported here): log records are also the
//! payload of the replication wire protocol — a primary ships them to a
//! follower in the same encoding it would write to disk. This module
//! keeps the in-memory container plus the replication-facing views: the
//! tail from an LSN (what a catch-up ships) and verbatim extension with
//! shipped records (how a follower's log mirrors its primary's).

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::repl::{decode_records_from, encode_records_into};
use anydb_common::{DbError, DbResult, TxnId};
use bytes::{Buf, Bytes, BytesMut};
use parking_lot::Mutex;

pub use anydb_common::repl::{LogOp, LogRecord};

/// An append-only, thread-safe write-ahead log.
#[derive(Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
    next_lsn: AtomicU64,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record, returning its LSN.
    pub fn append(&self, txn: TxnId, op: LogOp) -> u64 {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        self.records.lock().push(LogRecord { lsn, txn, op });
        lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next LSN this log will assign — equivalently, one past the
    /// highest LSN it holds. A follower sends this as its
    /// `CatchupFrom` point: everything below is already applied locally.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Snapshot of all records ordered by LSN. (Appends are racy relative
    /// to each other but each record is atomic; recovery runs quiesced.)
    pub fn snapshot(&self) -> Vec<LogRecord> {
        let mut v = self.records.lock().clone();
        v.sort_by_key(|r| r.lsn);
        v
    }

    /// The log tail: every record with `lsn >= from`, ordered by LSN.
    /// This is what a primary ships to answer a `CatchupFrom { from }`.
    pub fn tail_from(&self, from: u64) -> Vec<LogRecord> {
        let mut v: Vec<LogRecord> = self
            .records
            .lock()
            .iter()
            .filter(|r| r.lsn >= from)
            .cloned()
            .collect();
        v.sort_by_key(|r| r.lsn);
        v
    }

    /// Extends the log with records shipped from a primary, keeping their
    /// original LSNs (a follower's log is a verbatim mirror, not a
    /// re-numbering). Records this log already holds (an overlapping
    /// retransmitted tail) are skipped. Advances `next_lsn` past the
    /// highest appended LSN so a later promotion continues the primary's
    /// sequence instead of reusing it.
    pub fn extend_shipped(&self, records: &[LogRecord]) {
        if records.is_empty() {
            return;
        }
        let mut guard = self.records.lock();
        let have = self.next_lsn.load(Ordering::Relaxed);
        let mut max = have;
        for r in records {
            if r.lsn < have {
                continue;
            }
            max = max.max(r.lsn + 1);
            guard.push(r.clone());
        }
        self.next_lsn.fetch_max(max, Ordering::Relaxed);
    }

    /// Serializes the whole log to bytes ("what would hit disk") in the
    /// [`anydb_common::repl`] record encoding.
    pub fn serialize(&self) -> Bytes {
        let records = self.snapshot();
        let mut buf = BytesMut::new();
        encode_records_into(&records, &mut buf);
        buf.freeze()
    }

    /// Parses a serialized log back into records. Corrupt or truncated
    /// bytes are a [`DbError::Codec`] — never a panic (the same hardened
    /// codec rejects torn batches on the replication wire).
    pub fn deserialize(mut bytes: Bytes) -> DbResult<Vec<LogRecord>> {
        let records = decode_records_from(&mut bytes)?;
        if bytes.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after log"));
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{PartitionId, Rid, TableId, Tuple, Value};
    use bytes::BufMut;

    fn tuple(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str("x")])
    }

    #[test]
    fn append_assigns_monotone_lsns() {
        let wal = Wal::new();
        let a = wal.append(TxnId(1), LogOp::Commit);
        let b = wal.append(TxnId(2), LogOp::Abort);
        assert!(a < b);
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.next_lsn(), 2);
    }

    #[test]
    fn serialize_roundtrip() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(1),
                slot: 2,
                tuple: tuple(5),
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(1), 2),
                after: tuple(6),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let bytes = wal.serialize();
        let records = Wal::deserialize(bytes).unwrap();
        assert_eq!(records, wal.snapshot());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Wal::deserialize(Bytes::from_static(&[1, 2, 3])).is_err());
        let mut buf = BytesMut::new();
        buf.put_u64(1); // one record promised
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u8(9); // bogus tag
        assert_eq!(
            Wal::deserialize(buf.freeze()),
            Err(DbError::Codec("unknown log op tag"))
        );
    }

    #[test]
    fn tail_from_returns_suffix() {
        let wal = Wal::new();
        for t in 0..5u64 {
            wal.append(TxnId(t), LogOp::Commit);
        }
        let tail = wal.tail_from(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].lsn, 3);
        assert_eq!(tail[1].lsn, 4);
        assert!(wal.tail_from(99).is_empty());
        assert_eq!(wal.tail_from(0).len(), 5);
    }

    #[test]
    fn extend_shipped_mirrors_lsns_and_skips_overlap() {
        let primary = Wal::new();
        for t in 0..4u64 {
            primary.append(TxnId(t), LogOp::Commit);
        }
        let follower = Wal::new();
        follower.extend_shipped(&primary.tail_from(0));
        assert_eq!(follower.next_lsn(), 4);
        assert_eq!(follower.snapshot(), primary.snapshot());
        // A retransmitted overlapping tail appends nothing twice.
        follower.extend_shipped(&primary.tail_from(2));
        assert_eq!(follower.len(), 4);
        // Promotion continues the sequence rather than reusing LSN 4.
        let lsn = follower.append(TxnId(9), LogOp::Commit);
        assert_eq!(lsn, 4);
    }

    #[test]
    fn concurrent_appends_preserve_all_records() {
        let wal = std::sync::Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    wal.append(TxnId(t), LogOp::Commit);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = wal.snapshot();
        assert_eq!(snap.len(), 4000);
        // LSNs are unique and sorted.
        for w in snap.windows(2) {
            assert!(w[0].lsn < w[1].lsn);
        }
    }
}
