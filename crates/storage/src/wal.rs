//! Write-ahead log.
//!
//! §2.3 of the paper sketches the "naïve" fault-tolerance approach for an
//! architecture-less DBMS: ACs send log *events* to durable storage; on
//! failure the DBMS stops and replays the log. This module is that log: an
//! append-only sequence of records (kept in memory, optionally serialized
//! to the tuple wire format to mimic durable bytes), consumed by
//! [`crate::recovery`].

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::{DbError, DbResult, PartitionId, Rid, TableId, Tuple, TxnId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

/// One logged operation.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// A new row was appended. The RID is logged so replay can verify it
    /// reproduces identical physical placement.
    Insert {
        /// Table inserted into.
        table: TableId,
        /// Partition the row went to.
        partition: PartitionId,
        /// Slot the row landed in.
        slot: u32,
        /// The full row image.
        tuple: Tuple,
    },
    /// A row was overwritten; `after` is the full after-image (physical
    /// redo logging — simple and idempotent).
    Update {
        /// The updated record.
        rid: Rid,
        /// Full after-image.
        after: Tuple,
    },
    /// Transaction committed; its earlier records become redo-able.
    Commit,
    /// Transaction aborted; its earlier records are ignored by replay.
    Abort,
}

/// A log record: sequence number, owning transaction, operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Monotonically increasing log sequence number.
    pub lsn: u64,
    /// The transaction the operation belongs to.
    pub txn: TxnId,
    /// The operation.
    pub op: LogOp,
}

/// An append-only, thread-safe write-ahead log.
#[derive(Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
    next_lsn: AtomicU64,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record, returning its LSN.
    pub fn append(&self, txn: TxnId, op: LogOp) -> u64 {
        let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed);
        self.records.lock().push(LogRecord { lsn, txn, op });
        lsn
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records ordered by LSN. (Appends are racy relative
    /// to each other but each record is atomic; recovery runs quiesced.)
    pub fn snapshot(&self) -> Vec<LogRecord> {
        let mut v = self.records.lock().clone();
        v.sort_by_key(|r| r.lsn);
        v
    }

    /// Serializes the whole log to bytes ("what would hit disk").
    pub fn serialize(&self) -> Bytes {
        let records = self.snapshot();
        let mut buf = BytesMut::new();
        buf.put_u64(records.len() as u64);
        for r in &records {
            buf.put_u64(r.lsn);
            buf.put_u64(r.txn.raw());
            match &r.op {
                LogOp::Insert {
                    table,
                    partition,
                    slot,
                    tuple,
                } => {
                    buf.put_u8(0);
                    buf.put_u32(table.raw());
                    buf.put_u32(partition.raw());
                    buf.put_u32(*slot);
                    tuple.encode_into(&mut buf);
                }
                LogOp::Update { rid, after } => {
                    buf.put_u8(1);
                    buf.put_u32(rid.table.raw());
                    buf.put_u32(rid.partition.raw());
                    buf.put_u32(rid.slot);
                    after.encode_into(&mut buf);
                }
                LogOp::Commit => buf.put_u8(2),
                LogOp::Abort => buf.put_u8(3),
            }
        }
        buf.freeze()
    }

    /// Parses a serialized log back into records.
    pub fn deserialize(mut bytes: Bytes) -> DbResult<Vec<LogRecord>> {
        if bytes.remaining() < 8 {
            return Err(DbError::Codec("log header truncated"));
        }
        let n = bytes.get_u64() as usize;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            if bytes.remaining() < 17 {
                return Err(DbError::Codec("log record truncated"));
            }
            let lsn = bytes.get_u64();
            let txn = TxnId(bytes.get_u64());
            let tag = bytes.get_u8();
            let op = match tag {
                0 => {
                    if bytes.remaining() < 12 {
                        return Err(DbError::CorruptLog(lsn));
                    }
                    let table = TableId(bytes.get_u32());
                    let partition = PartitionId(bytes.get_u32());
                    let slot = bytes.get_u32();
                    let tuple = Tuple::decode_from(&mut bytes)?;
                    LogOp::Insert {
                        table,
                        partition,
                        slot,
                        tuple,
                    }
                }
                1 => {
                    if bytes.remaining() < 12 {
                        return Err(DbError::CorruptLog(lsn));
                    }
                    let rid = Rid::new(
                        TableId(bytes.get_u32()),
                        PartitionId(bytes.get_u32()),
                        bytes.get_u32(),
                    );
                    let after = Tuple::decode_from(&mut bytes)?;
                    LogOp::Update { rid, after }
                }
                2 => LogOp::Commit,
                3 => LogOp::Abort,
                _ => return Err(DbError::CorruptLog(lsn)),
            };
            out.push(LogRecord { lsn, txn, op });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    fn tuple(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i), Value::str("x")])
    }

    #[test]
    fn append_assigns_monotone_lsns() {
        let wal = Wal::new();
        let a = wal.append(TxnId(1), LogOp::Commit);
        let b = wal.append(TxnId(2), LogOp::Abort);
        assert!(a < b);
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn serialize_roundtrip() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(1),
                slot: 2,
                tuple: tuple(5),
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(1), 2),
                after: tuple(6),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let bytes = wal.serialize();
        let records = Wal::deserialize(bytes).unwrap();
        assert_eq!(records, wal.snapshot());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Wal::deserialize(Bytes::from_static(&[1, 2, 3])).is_err());
        let mut buf = BytesMut::new();
        buf.put_u64(1); // one record promised
        buf.put_u64(0);
        buf.put_u64(0);
        buf.put_u8(9); // bogus tag
        assert_eq!(Wal::deserialize(buf.freeze()), Err(DbError::CorruptLog(0)));
    }

    #[test]
    fn concurrent_appends_preserve_all_records() {
        let wal = std::sync::Arc::new(Wal::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let wal = wal.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    wal.append(TxnId(t), LogOp::Commit);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = wal.snapshot();
        assert_eq!(snap.len(), 4000);
        // LSNs are unique and sorted.
        for w in snap.windows(2) {
            assert!(w[0].lsn < w[1].lsn);
        }
    }
}
