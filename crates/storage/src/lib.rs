//! # anydb-storage
//!
//! The in-memory storage substrate: partitioned row tables with per-row
//! versioned latching, hash and ordered secondary indexes, a catalog with
//! statistics, and a write-ahead log with replay-based recovery.
//!
//! In the architecture-less model, storage is just "state that data streams
//! ship to ACs"; physically, partitions live in [`Store`] and are served by
//! whichever AC acts as the storage component (or accessed directly by an
//! AC collocated with the partition — the shared-nothing configuration).
//!
//! Both AnyDB (`anydb-core`) and the static baseline (`anydb-dbx1000`)
//! build on this same substrate so that Figure 1/5 comparisons measure
//! architecture, not storage implementation differences.

pub mod catalog;
pub mod index;
pub mod key;
pub mod partition;
pub mod record;
pub mod recovery;
pub mod store;
pub mod table;
pub mod wal;

pub use catalog::{Catalog, TableSpec};
pub use index::{HashIndex, OrderedIndex, SecondaryIndexSpec};
pub use key::{IndexKey, KeyValue};
pub use partition::{Partition, ScanSnapshot};
pub use record::Row;
pub use recovery::{replay, replay_records, twopc_scan, PcTxn, RecoveryStats};
pub use store::{Partitioner, Store};
pub use table::{SharedScanStats, Table};
pub use wal::{LogOp, LogRecord, Wal};
