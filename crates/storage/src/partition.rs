//! A horizontal partition: an append-only vector of latched, versioned rows.
//!
//! Concurrency design: the outer `RwLock` is held in read mode for any row
//! access (the per-row `RwLock` provides record latching) and in write mode
//! only to append. Slots are never removed or moved, so RIDs are stable.

use anydb_common::{ColPredicate, ColumnBatch, DbError, DbResult, Tuple};
use parking_lot::RwLock;

use crate::record::Row;

/// One partition's row store.
#[derive(Default)]
pub struct Partition {
    rows: RwLock<Vec<RwLock<Row>>>,
}

impl Partition {
    /// Empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row, returning its slot.
    pub fn append(&self, tuple: Tuple) -> u32 {
        let mut rows = self.rows.write();
        let slot = rows.len() as u32;
        rows.push(RwLock::new(Row::new(tuple)));
        slot
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a row under its latch, passing it to `f`.
    pub fn read<R>(&self, slot: u32, f: impl FnOnce(&Row) -> R) -> DbResult<R> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or(DbError::Internal(format!("slot {slot} out of range")))?;
        let guard = row.read();
        Ok(f(&guard))
    }

    /// Clones the tuple (and version) at `slot`.
    pub fn read_tuple(&self, slot: u32) -> DbResult<(Tuple, u64)> {
        self.read(slot, |row| (row.tuple().clone(), row.version()))
    }

    /// Mutates a row under its exclusive latch; returns `f`'s result and
    /// the new version.
    pub fn update<R>(&self, slot: u32, f: impl FnOnce(&mut Tuple) -> R) -> DbResult<(R, u64)> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or(DbError::Internal(format!("slot {slot} out of range")))?;
        let mut guard = row.write();
        let mut out = None;
        let version = guard.update(|t| out = Some(f(t)));
        Ok((out.expect("update closure ran"), version))
    }

    /// Iterates all rows under read latches, calling `f(slot, row)`.
    ///
    /// The iteration sees a consistent prefix: rows appended concurrently
    /// may or may not be visited, matching read-committed scan semantics
    /// used by the OLAP paths.
    pub fn scan(&self, mut f: impl FnMut(u32, &Row)) {
        let rows = self.rows.read();
        for (slot, row) in rows.iter().enumerate() {
            let guard = row.read();
            f(slot as u32, &guard);
        }
    }

    /// Columnar scan with projection and filter pushdown: appends the
    /// `proj` columns of every row passing `pred` directly into `out`'s
    /// typed column vectors — no per-row [`Tuple`] clone, no post-hoc
    /// filter pass over already-copied rows. Rows failing `pred` are
    /// skipped before any value is copied, and only projected values are
    /// ever touched, so a filtered key-column scan does a fraction of the
    /// row path's work.
    ///
    /// Same consistency as [`Partition::scan`] (per-row latches, a
    /// consistent prefix under concurrent appends). Returns the number of
    /// rows scanned (pre-filter); errs only if a row's values mismatch
    /// `out`'s column types, i.e. `out` was built for another schema.
    pub fn scan_columns(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<usize> {
        let rows = self.rows.read();
        for row in rows.iter() {
            let guard = row.read();
            let values = guard.tuple().values();
            if pred.is_some_and(|p| !p.matches(values)) {
                continue;
            }
            out.push_projected(values, proj)?;
        }
        Ok(rows.len())
    }

    /// Collects tuples matching `pred` (convenience for scans).
    pub fn collect_matching(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.scan(|_, row| {
            if pred(row.tuple()) {
                out.push(row.tuple().clone());
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn append_read_update() {
        let p = Partition::new();
        let s0 = p.append(t(10));
        let s1 = p.append(t(20));
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.read_tuple(0).unwrap().0, t(10));
        let ((), v) = p
            .update(1, |tu| {
                tu.set(0, Value::Int(21));
            })
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(p.read_tuple(1).unwrap(), (t(21), 1));
    }

    #[test]
    fn out_of_range_errors() {
        let p = Partition::new();
        assert!(p.read_tuple(0).is_err());
        assert!(p.update(3, |_| ()).is_err());
    }

    #[test]
    fn scan_visits_everything() {
        let p = Partition::new();
        for i in 0..100 {
            p.append(t(i));
        }
        let mut sum = 0;
        p.scan(|_, row| sum += row.tuple().get(0).as_int().unwrap());
        assert_eq!(sum, (0..100).sum::<i64>());
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn scan_columns_pushes_down_filter_and_projection() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let p = Partition::new();
        for i in 0..10 {
            p.append(Tuple::new(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "Even" } else { "odd" }),
                Value::Float(i as f64),
            ]));
        }
        // Project (float, int), filter on the string column — the filter
        // column is not part of the projection.
        let mut out = ColumnBatch::new(&[DataType::Float, DataType::Int]);
        let pred = ColPredicate::StrPrefix {
            col: 1,
            prefix: "E".into(),
        };
        let scanned = p.scan_columns(&[2, 0], Some(&pred), &mut out).unwrap();
        assert_eq!(scanned, 10);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.column(1).ints().unwrap(), &[0, 2, 4, 6, 8]);
        // No predicate: everything lands.
        let mut all = ColumnBatch::new(&[DataType::Int]);
        p.scan_columns(&[0], None, &mut all).unwrap();
        assert_eq!(all.rows(), 10);
        // Type mismatch surfaces as an error, not a panic.
        let mut wrong = ColumnBatch::new(&[DataType::Str]);
        assert!(p.scan_columns(&[0], None, &mut wrong).is_err());
    }

    #[test]
    fn collect_matching_filters() {
        let p = Partition::new();
        for i in 0..10 {
            p.append(t(i));
        }
        let got = p.collect_matching(|tu| tu.get(0).as_int().unwrap() % 2 == 0);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn concurrent_updates_are_isolated_per_row() {
        let p = std::sync::Arc::new(Partition::new());
        p.append(t(0));
        p.append(t(0));
        let mut handles = Vec::new();
        for slot in 0..2u32 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    p.update(slot, |tu| {
                        let v = tu.get(0).as_int().unwrap();
                        tu.set(0, Value::Int(v + 1));
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.read_tuple(0).unwrap().0, t(10_000));
        assert_eq!(p.read_tuple(1).unwrap().0, t(10_000));
    }

    #[test]
    fn concurrent_appends_do_not_lose_rows() {
        let p = std::sync::Arc::new(Partition::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    p.append(t(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.len(), 4000);
    }
}
