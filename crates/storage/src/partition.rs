//! A horizontal partition: an append-only vector of latched, versioned rows.
//!
//! Concurrency design: the outer `RwLock` is held in read mode for any row
//! access (the per-row `RwLock` provides record latching) and in write mode
//! only to append. Slots are never removed or moved, so RIDs are stable.
//!
//! A monotone **write epoch** ([`Partition::epoch`]) is bumped before every
//! append and every row mutation. Analytic scans read it on entry and exit:
//! equal readings certify that the materialized columns are a true
//! point-in-time image of the partition prefix (see
//! [`Partition::scan_columns_snapshot`] and [`ScanSnapshot`]).

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::{ColPredicate, ColumnBatch, DbError, DbResult, Tuple};
use parking_lot::RwLock;

use crate::record::Row;

/// Rows materialized per exclusive chunk by
/// [`Partition::scan_columns_snapshot`]: large enough to amortize the
/// outer-lock handoff, small enough that racing OLTP writers are stalled
/// for microseconds, not a scan's length.
const SNAPSHOT_CHUNK: usize = 1024;

/// What a [`Partition::scan_columns_snapshot`] observed — the snapshot's
/// consistency certificate.
///
/// The contract (also §5 of DESIGN.md):
///
/// 1. **Fixed prefix** — the scan covers exactly the `prefix` rows present
///    when it began, in slot order; rows appended while it runs are never
///    visible.
/// 2. **Row atomicity** — every row is materialized under mutual exclusion
///    with writers, so no torn row can be observed, ever.
/// 3. **Epoch certificate** — `epoch_start == epoch_end` proves no write
///    (append or update) was interleaved anywhere in the partition, i.e.
///    the whole prefix is one point-in-time image. When they differ, the
///    scan is still a sequence of per-chunk point-in-time images
///    (read-committed prefix semantics) and `max_version` bounds the
///    newest row state it can contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSnapshot {
    /// Rows in the captured prefix (scanned pre-filter).
    pub prefix: usize,
    /// Rows that passed the predicate into the output batch.
    pub matched: usize,
    /// Partition write epoch when the scan began.
    pub epoch_start: u64,
    /// Partition write epoch when the scan finished.
    pub epoch_end: u64,
    /// Highest row version observed in the prefix (0 when empty).
    pub max_version: u64,
}

impl ScanSnapshot {
    /// True when the whole prefix is certified as one point-in-time image
    /// (no write raced the scan).
    pub fn is_point_in_time(&self) -> bool {
        self.epoch_start == self.epoch_end
    }
}

/// One partition's row store.
#[derive(Default)]
pub struct Partition {
    rows: RwLock<Vec<RwLock<Row>>>,
    /// Write epoch: bumped (before the mutation publishes) on every append
    /// and row update. `SeqCst` on both sides so a scan whose two readings
    /// agree cannot have observed an interleaved write.
    epoch: AtomicU64,
}

impl Partition {
    /// Empty partition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a row, returning its slot.
    pub fn append(&self, tuple: Tuple) -> u32 {
        let mut rows = self.rows.write();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let slot = rows.len() as u32;
        rows.push(RwLock::new(Row::new(tuple)));
        slot
    }

    /// The current write epoch (monotone; see [`ScanSnapshot`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a row under its latch, passing it to `f`.
    pub fn read<R>(&self, slot: u32, f: impl FnOnce(&Row) -> R) -> DbResult<R> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or_else(|| DbError::Internal(format!("slot {slot} out of range")))?;
        let guard = row.read();
        Ok(f(&guard))
    }

    /// Clones the tuple (and version) at `slot`.
    pub fn read_tuple(&self, slot: u32) -> DbResult<(Tuple, u64)> {
        self.read(slot, |row| (row.tuple().clone(), row.version()))
    }

    /// Mutates a row under its exclusive latch; returns `f`'s result and
    /// the new version.
    pub fn update<R>(&self, slot: u32, f: impl FnOnce(&mut Tuple) -> R) -> DbResult<(R, u64)> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or_else(|| DbError::Internal(format!("slot {slot} out of range")))?;
        let mut guard = row.write();
        // Bump the epoch *while holding the row latch, before mutating*:
        // any snapshot scan that observes this write therefore also
        // observes the bump (see `ScanSnapshot`'s certificate).
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let mut out = None;
        let version = guard.update(|t| out = Some(f(t)));
        Ok((out.expect("update closure ran"), version))
    }

    /// Iterates all rows under read latches, calling `f(slot, row)`.
    ///
    /// The iteration sees a consistent prefix: rows appended concurrently
    /// may or may not be visited, matching read-committed scan semantics
    /// used by the OLAP paths.
    pub fn scan(&self, mut f: impl FnMut(u32, &Row)) {
        let rows = self.rows.read();
        for (slot, row) in rows.iter().enumerate() {
            let guard = row.read();
            f(slot as u32, &guard);
        }
    }

    /// Columnar scan with projection and filter pushdown: appends the
    /// `proj` columns of every row passing `pred` directly into `out`'s
    /// typed column vectors — no per-row [`Tuple`] clone, no post-hoc
    /// filter pass over already-copied rows. Rows failing `pred` are
    /// skipped before any value is copied, and only projected values are
    /// ever touched, so a filtered key-column scan does a fraction of the
    /// row path's work.
    ///
    /// Same consistency as [`Partition::scan`] (per-row latches, a
    /// consistent prefix under concurrent appends). Returns the number of
    /// rows scanned (pre-filter); errs only if a row's values mismatch
    /// `out`'s column types, i.e. `out` was built for another schema.
    pub fn scan_columns(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<usize> {
        let mut app = out.appender();
        let rows = self.rows.read();
        // Pre-size only unfiltered scans: for selective predicates a
        // full-prefix reservation would pin far more memory than the
        // matches need (and scan outputs can outlive the scan — the
        // shared-scan cache holds them).
        if pred.is_none() {
            app.reserve(rows.len());
        }
        for row in rows.iter() {
            let guard = row.read();
            let values = guard.tuple().values();
            if pred.is_some_and(|p| !p.matches(values)) {
                continue;
            }
            app.push_projected(values, proj)?;
        }
        Ok(rows.len())
    }

    /// Snapshot-consistent columnar scan: like [`Partition::scan_columns`],
    /// but materializes a **consistent prefix in one pass** while OLTP
    /// writes race, and returns a [`ScanSnapshot`] certificate describing
    /// exactly how consistent the result is.
    ///
    /// Mechanics: the prefix length and start epoch are captured once,
    /// then rows are materialized in [`SNAPSHOT_CHUNK`]-sized chunks under
    /// the **outer write lock** — total mutual exclusion per chunk, so no
    /// per-row latch is ever acquired (the row latches are bypassed via
    /// `get_mut`, which is safe because the outer write guard proves no
    /// writer holds one). Between chunks the lock is released so racing
    /// OLTP transactions are stalled at most one chunk's worth of copying,
    /// not a whole analytic scan. The per-row-latch `scan_columns` remains
    /// the right tool when an analytic reader must never block writers at
    /// all; this one trades bounded micro-stalls for a scan with zero
    /// latch traffic and a checkable consistency certificate.
    ///
    /// Consistency contract: see [`ScanSnapshot`]. Errs only if a row's
    /// values mismatch `out`'s column types (then `out` is ragged and must
    /// be discarded).
    pub fn scan_columns_snapshot(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<ScanSnapshot> {
        let mut app = out.appender();
        let mut guard = self.rows.write();
        let epoch_start = self.epoch.load(Ordering::SeqCst);
        let prefix = guard.len();
        // See `scan_columns`: only unfiltered scans pre-size for the
        // whole prefix — filtered outputs live on in the shared-scan
        // cache and must not pin a full-prefix reservation.
        if pred.is_none() {
            app.reserve(prefix);
        }
        let mut matched = 0usize;
        let mut max_version = 0u64;
        let mut slot = 0usize;
        while slot < prefix {
            let chunk_end = (slot + SNAPSHOT_CHUNK).min(prefix);
            while slot < chunk_end {
                // Safe latch bypass: we hold the outer lock exclusively,
                // so no row latch can be held by anyone else.
                let row = guard[slot].get_mut();
                max_version = max_version.max(row.version());
                let values = row.tuple().values();
                if pred.is_none_or(|p| p.matches(values)) {
                    app.push_projected(values, proj)?;
                    matched += 1;
                }
                slot += 1;
            }
            if chunk_end < prefix {
                // Chunk boundary: let stalled writers (and appenders) in.
                // Slots below `prefix` stay valid — rows are append-only.
                drop(guard);
                guard = self.rows.write();
            }
        }
        let epoch_end = self.epoch.load(Ordering::SeqCst);
        drop(guard);
        Ok(ScanSnapshot {
            prefix,
            matched,
            epoch_start,
            epoch_end,
            max_version,
        })
    }

    /// Collects tuples matching `pred` (convenience for scans).
    pub fn collect_matching(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.scan(|_, row| {
            if pred(row.tuple()) {
                out.push(row.tuple().clone());
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn append_read_update() {
        let p = Partition::new();
        let s0 = p.append(t(10));
        let s1 = p.append(t(20));
        assert_eq!(s0, 0);
        assert_eq!(s1, 1);
        assert_eq!(p.read_tuple(0).unwrap().0, t(10));
        let ((), v) = p
            .update(1, |tu| {
                tu.set(0, Value::Int(21));
            })
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(p.read_tuple(1).unwrap(), (t(21), 1));
    }

    #[test]
    fn out_of_range_errors() {
        let p = Partition::new();
        assert!(p.read_tuple(0).is_err());
        assert!(p.update(3, |_| ()).is_err());
    }

    #[test]
    fn scan_visits_everything() {
        let p = Partition::new();
        for i in 0..100 {
            p.append(t(i));
        }
        let mut sum = 0;
        p.scan(|_, row| sum += row.tuple().get(0).as_int().unwrap());
        assert_eq!(sum, (0..100).sum::<i64>());
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn scan_columns_pushes_down_filter_and_projection() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let p = Partition::new();
        for i in 0..10 {
            p.append(Tuple::new(vec![
                Value::Int(i),
                Value::str(if i % 2 == 0 { "Even" } else { "odd" }),
                Value::Float(i as f64),
            ]));
        }
        // Project (float, int), filter on the string column — the filter
        // column is not part of the projection.
        let mut out = ColumnBatch::new(&[DataType::Float, DataType::Int]);
        let pred = ColPredicate::StrPrefix {
            col: 1,
            prefix: "E".into(),
        };
        let scanned = p.scan_columns(&[2, 0], Some(&pred), &mut out).unwrap();
        assert_eq!(scanned, 10);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.column(1).ints().unwrap(), &[0, 2, 4, 6, 8]);
        // No predicate: everything lands.
        let mut all = ColumnBatch::new(&[DataType::Int]);
        p.scan_columns(&[0], None, &mut all).unwrap();
        assert_eq!(all.rows(), 10);
        // Type mismatch surfaces as an error, not a panic.
        let mut wrong = ColumnBatch::new(&[DataType::Str]);
        assert!(p.scan_columns(&[0], None, &mut wrong).is_err());
    }

    #[test]
    fn snapshot_scan_matches_plain_scan_when_quiescent() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let p = Partition::new();
        for i in 0..2500 {
            // More rows than one SNAPSHOT_CHUNK, to cross a chunk boundary.
            p.append(Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]));
        }
        let pred = ColPredicate::IntBetween {
            col: 0,
            min: 100,
            max: 1999,
        };
        let mut snap_out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
        let snap = p
            .scan_columns_snapshot(&[0, 1], Some(&pred), &mut snap_out)
            .unwrap();
        let mut plain_out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
        p.scan_columns(&[0, 1], Some(&pred), &mut plain_out)
            .unwrap();
        assert_eq!(snap_out, plain_out);
        assert_eq!(snap.prefix, 2500);
        assert_eq!(snap.matched, 1900);
        assert_eq!(snap.matched, snap_out.rows());
        assert!(snap.is_point_in_time(), "no writer raced: {snap:?}");
        assert_eq!(snap.max_version, 0);
    }

    #[test]
    fn snapshot_reports_epoch_movement_and_versions() {
        use anydb_common::{ColumnBatch, DataType};
        let p = Partition::new();
        p.append(t(1));
        let e0 = p.epoch();
        p.update(0, |tu| tu.set(0, Value::Int(2))).unwrap();
        assert!(p.epoch() > e0, "update must bump the epoch");
        p.append(t(3));
        let mut out = ColumnBatch::new(&[DataType::Int]);
        let snap = p.scan_columns_snapshot(&[0], None, &mut out).unwrap();
        assert_eq!(snap.prefix, 2);
        assert_eq!(snap.max_version, 1);
        assert!(snap.is_point_in_time());
        assert_eq!(out.column(0).ints().unwrap(), &[2, 3]);
    }

    #[test]
    fn snapshot_scan_excludes_rows_appended_after_capture() {
        // The snapshot prefix is fixed at entry; an append racing the scan
        // lands after the prefix and must not appear. (Deterministic
        // variant: append between two scans and compare certificates.)
        use anydb_common::{ColumnBatch, DataType};
        let p = Partition::new();
        for i in 0..10 {
            p.append(t(i));
        }
        let mut out = ColumnBatch::new(&[DataType::Int]);
        let snap = p.scan_columns_snapshot(&[0], None, &mut out).unwrap();
        p.append(t(99));
        let mut out2 = ColumnBatch::new(&[DataType::Int]);
        let snap2 = p.scan_columns_snapshot(&[0], None, &mut out2).unwrap();
        assert_eq!(snap.prefix, 10);
        assert_eq!(snap2.prefix, 11);
        assert!(snap2.epoch_start > snap.epoch_end);
        assert_eq!(out2.rows(), 11);
    }

    #[test]
    fn collect_matching_filters() {
        let p = Partition::new();
        for i in 0..10 {
            p.append(t(i));
        }
        let got = p.collect_matching(|tu| tu.get(0).as_int().unwrap() % 2 == 0);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn concurrent_updates_are_isolated_per_row() {
        let p = std::sync::Arc::new(Partition::new());
        p.append(t(0));
        p.append(t(0));
        let mut handles = Vec::new();
        for slot in 0..2u32 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    p.update(slot, |tu| {
                        let v = tu.get(0).as_int().unwrap();
                        tu.set(0, Value::Int(v + 1));
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.read_tuple(0).unwrap().0, t(10_000));
        assert_eq!(p.read_tuple(1).unwrap().0, t(10_000));
    }

    #[test]
    fn concurrent_appends_do_not_lose_rows() {
        let p = std::sync::Arc::new(Partition::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    p.append(t(i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.len(), 4000);
    }
}
