//! A horizontal partition: an append-only vector of latched, versioned rows
//! plus a write-through **per-column storage mirror**.
//!
//! Concurrency design: the outer `RwLock` is held in read mode for any row
//! access (the per-row `RwLock` provides record latching) and in write mode
//! only to append. Slots are never removed or moved, so RIDs are stable.
//!
//! ## The column mirror (C-Store/Vertica move)
//!
//! A partition built with [`Partition::with_types`] additionally keeps every
//! column in a typed, in-place-updatable vector
//! ([`anydb_common::ColumnStore`]), maintained **write-through** by
//! `append`/`update` under the partition's latch/epoch discipline. Columnar
//! scans copy ranges of those vectors instead of walking tuples, so a cold
//! analytic scan pays sequential typed-vector reads rather than one
//! tuple-buffer cache miss per row. The mirror sits behind its own `RwLock`
//! (acquired *after* the row-store locks, never the other way around):
//! writers hold it for the duration of one row's write-through, scans hold
//! it in read chunks paced by a writer-aware controller ([`ChunkPacer`],
//! starting at [`SNAPSHOT_CHUNK`] rows) — racing OLTP writers stall at
//! most one chunk's worth of copying, and the chunk shrinks while writers
//! are actually queueing behind the scan.
//!
//! ## Epochs, global and per column
//!
//! A monotone **write epoch** ([`Partition::epoch`]) is bumped before every
//! append and every row mutation. On top of it the mirror tracks **dirty
//! state at column granularity**: each column remembers the epoch of the
//! last write that actually *changed* one of its values (write-through
//! diffs against the mirror, so overwriting a value with itself invalidates
//! nothing), and the mirror remembers the epoch of the last append (prefix
//! growth invalidates every column set). A scan over columns `S = proj ∪
//! pred` therefore certifies itself against `max(append epoch, column
//! epochs over S)` ([`ScanSnapshot::cols_epoch_start`]/`cols_epoch_end`,
//! [`Partition::cols_epoch`]) — OLTP writes to columns outside `S` leave
//! the certificate, and any cached scan keyed on it, untouched.
//!
//! Epoch reads and bumps all happen under the mirror lock (for mirrored
//! partitions), so equal readings at scan start and end prove no relevant
//! write interleaved anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::{ColPredicate, ColumnBatch, ColumnStore, DataType, DbError, DbResult, Tuple};
// The certificate type lives in `anydb_common::scan` since it ships
// inside `ScanReply` wire messages; storage re-exports it unchanged.
pub use anydb_common::ScanSnapshot;
use parking_lot::RwLock;

use crate::record::Row;

/// Rows materialized per exclusive chunk by the columnar scans: large
/// enough to amortize the lock handoff, small enough that racing OLTP
/// writers are stalled for microseconds, not a scan's length. This is the
/// [`ChunkPacer`]'s starting point, not a fixed size.
const SNAPSHOT_CHUNK: usize = 1024;

/// Writer-aware chunk pacing for the snapshot scans.
///
/// A fixed chunk forces one stall/amortization trade-off on every
/// workload phase. The pacer adapts it per scan from the one signal the
/// scan can observe for free: whether the partition's write epoch moved
/// while the lock was released at a chunk boundary. Writers slipping in
/// at the handoff were very likely queued *behind* the scan, so the next
/// chunk halves (shorter stalls for the writers still coming); a quiet
/// handoff doubles it back (nobody is waiting — spend the lock hold on
/// amortization). Multiplicative in both directions, like the event
/// streams' `AdaptiveBatch`, so it spans its whole range in a few
/// boundaries of a long scan.
#[derive(Debug)]
struct ChunkPacer {
    chunk: usize,
}

impl ChunkPacer {
    const MIN: usize = 128;
    const MAX: usize = 8192;

    fn new() -> Self {
        Self {
            chunk: SNAPSHOT_CHUNK,
        }
    }

    fn chunk(&self) -> usize {
        self.chunk
    }

    /// Feeds one lock-handoff observation: did the write epoch move while
    /// the scan let go of the lock?
    fn observe(&mut self, writers_slipped: bool) {
        self.chunk = if writers_slipped {
            (self.chunk / 2).max(Self::MIN)
        } else {
            (self.chunk * 2).min(Self::MAX)
        };
    }
}

/// The column positions a predicate reads (empty for `None`).
fn pred_columns(pred: Option<&ColPredicate>) -> Vec<usize> {
    let mut cols = Vec::new();
    if let Some(p) = pred {
        p.collect_columns(&mut cols);
    }
    cols
}

/// The write-through column mirror: one [`ColumnStore`] per schema column,
/// plus the column-granular dirty tracking.
struct Mirror {
    cols: Vec<ColumnStore>,
    /// Per column: the global epoch of the last write that *changed* a
    /// value of this column (appends included).
    col_epochs: Vec<u64>,
    /// Global epoch of the last append (prefix growth invalidates every
    /// column set).
    append_epoch: u64,
    /// Rows mirrored (equals the row store's length whenever both locks
    /// are free — appends hold both).
    rows: usize,
    /// Highest row version written through (scan certificates).
    max_version: u64,
}

impl Mirror {
    fn new(types: &[DataType]) -> Self {
        Self {
            cols: types.iter().map(|&ty| ColumnStore::new(ty)).collect(),
            col_epochs: vec![0; types.len()],
            append_epoch: 0,
            rows: 0,
            max_version: 0,
        }
    }

    /// The newest epoch relevant to a scan over `proj ∪ pred_cols`
    /// (`pred_cols` pre-collected via [`ColPredicate::collect_columns`]).
    fn scan_epoch(&self, proj: &[usize], pred_cols: &[usize]) -> u64 {
        let mut e = self.append_epoch;
        for &c in proj.iter().chain(pred_cols) {
            if let Some(&ce) = self.col_epochs.get(c) {
                e = e.max(ce);
            }
        }
        e
    }

    /// Write-through of a fresh row at epoch `e`.
    ///
    /// # Panics
    /// Panics on arity or type mismatch: mirrored partitions only accept
    /// schema-checked tuples (the table checks before appending).
    fn append(&mut self, values: &[anydb_common::Value], e: u64) {
        assert_eq!(
            values.len(),
            self.cols.len(),
            "mirrored partition fed a tuple of the wrong arity"
        );
        for (col, v) in self.cols.iter_mut().zip(values) {
            col.push(v)
                .expect("mirrored partition fed a schema-checked tuple");
        }
        self.rows += 1;
        self.append_epoch = e;
    }

    /// Write-through of an updated row at epoch `e`: every column is
    /// diffed against the mirror and only columns whose value actually
    /// changed get their epoch bumped — the column-granular dirty signal.
    ///
    /// # Panics
    /// Panics on arity or type mismatch (see [`Mirror::append`]).
    fn update(&mut self, slot: usize, values: &[anydb_common::Value], e: u64, version: u64) {
        assert_eq!(
            values.len(),
            self.cols.len(),
            "mirrored partition fed a tuple of the wrong arity"
        );
        for (c, (col, v)) in self.cols.iter_mut().zip(values).enumerate() {
            let changed = col
                .set(slot, v)
                .expect("mirrored partition fed a schema-checked tuple");
            if changed {
                self.col_epochs[c] = e;
            }
        }
        self.max_version = self.max_version.max(version);
    }
}

/// One partition's row store (plus the optional column mirror).
#[derive(Default)]
pub struct Partition {
    rows: RwLock<Vec<RwLock<Row>>>,
    /// Write epoch: bumped on every append and row update, in the same
    /// critical section as the write it stamps. `SeqCst` on both sides so
    /// a scan whose two readings agree cannot have observed an
    /// interleaved write. For mirrored partitions every bump happens
    /// under the mirror's write lock together with the mirror
    /// write-through (the certificate's atomic unit); for un-mirrored
    /// partitions the bump sits inside the row latch, and the snapshot
    /// fallback scan holds the outer write lock, excluding updates
    /// entirely.
    epoch: AtomicU64,
    /// The write-through column mirror; `None` for partitions built via
    /// [`Partition::new`] (columnar scans then fall back to tuple walks).
    /// Lock order: row-store locks first, mirror last.
    mirror: Option<RwLock<Mirror>>,
}

impl Partition {
    /// Empty partition **without** a column mirror: columnar scans fall
    /// back to per-row tuple walks and column-level epochs degrade to the
    /// global epoch. Tables always build mirrored partitions; this stays
    /// for raw row-store use (and as the fallback arm in tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty partition with a write-through column mirror typed for the
    /// given schema columns — what [`crate::Table`] builds.
    pub fn with_types(types: &[DataType]) -> Self {
        Self {
            rows: RwLock::new(Vec::new()),
            epoch: AtomicU64::new(0),
            mirror: Some(RwLock::new(Mirror::new(types))),
        }
    }

    /// True when this partition maintains a column mirror.
    pub fn has_mirror(&self) -> bool {
        self.mirror.is_some()
    }

    /// Appends a row, returning its slot.
    ///
    /// # Panics
    /// For mirrored partitions, panics if the tuple does not match the
    /// mirror's column types (tuples must be schema-checked upstream).
    pub fn append(&self, tuple: Tuple) -> u32 {
        match self.append_with::<std::convert::Infallible>(tuple, |_| Ok(())) {
            Ok(slot) => slot,
            Err(e) => match e {},
        }
    }

    /// Appends a row **after** running `reserve` with the slot it will
    /// occupy, all under the partition's append lock: if `reserve` errs
    /// (e.g. a primary-key index rejects a duplicate), nothing is
    /// published — no row, no mirror write, no epoch bump. This is the
    /// reserve-before-publish primitive [`crate::Table::insert`] uses to
    /// keep a rejected insert from leaking a ghost row.
    ///
    /// # Panics
    /// See [`Partition::append`].
    pub fn append_with<E>(
        &self,
        tuple: Tuple,
        reserve: impl FnOnce(u32) -> Result<(), E>,
    ) -> Result<u32, E> {
        let mut rows = self.rows.write();
        let slot = rows.len() as u32;
        reserve(slot)?;
        let mut mirror = self.mirror.as_ref().map(|m| m.write());
        let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(m) = mirror.as_mut() {
            m.append(tuple.values(), e);
        }
        rows.push(RwLock::new(Row::new(tuple)));
        Ok(slot)
    }

    /// The current write epoch (monotone; see [`ScanSnapshot`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The newest epoch relevant to scans over `proj` ∪ `pred`'s columns:
    /// the max of the last append and the last *value-changing* write to
    /// each relevant column. Un-mirrored partitions report the global
    /// epoch (column granularity unknown). This is the O(|columns|)
    /// revalidation read of the shared-scan cache.
    pub fn cols_epoch(&self, proj: &[usize], pred: Option<&ColPredicate>) -> u64 {
        match &self.mirror {
            Some(m) => m.read().scan_epoch(proj, &pred_columns(pred)),
            None => self.epoch(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.read().len()
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a row under its latch, passing it to `f`.
    pub fn read<R>(&self, slot: u32, f: impl FnOnce(&Row) -> R) -> DbResult<R> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or_else(|| DbError::Internal(format!("slot {slot} out of range")))?;
        let guard = row.read();
        Ok(f(&guard))
    }

    /// Clones the tuple (and version) at `slot`.
    pub fn read_tuple(&self, slot: u32) -> DbResult<(Tuple, u64)> {
        self.read(slot, |row| (row.tuple().clone(), row.version()))
    }

    /// Mutates a row under its exclusive latch; returns `f`'s result and
    /// the new version. The column mirror is maintained write-through in
    /// the same critical section, diffing each column so only columns
    /// whose value actually changed are marked dirty.
    ///
    /// # Panics
    /// For mirrored partitions, panics if `f` leaves the tuple mismatching
    /// the mirror's column types (updates must preserve the schema).
    pub fn update<R>(&self, slot: u32, f: impl FnOnce(&mut Tuple) -> R) -> DbResult<(R, u64)> {
        let rows = self.rows.read();
        let row = rows
            .get(slot as usize)
            .ok_or_else(|| DbError::Internal(format!("slot {slot} out of range")))?;
        let mut guard = row.write();
        // The caller's closure runs under the row latch only, so updates
        // to different rows stay concurrent (`Table::update` does
        // secondary-index maintenance in here). The mirror write lock is
        // taken *after* — still inside the row latch, so same-row
        // write-throughs keep version order — and spans just the epoch
        // bump plus the row's write-through: to a mirror-lock reader the
        // bump and the mirror write are one atomic event, which is what
        // makes the epoch certificate truthful and torn rows
        // unobservable. Mirror scans read only the mirror, so the tuple
        // heap briefly running ahead of it is invisible to them.
        let mut out = None;
        let version = guard.update(|t| out = Some(f(t)));
        if let Some(m) = &self.mirror {
            let mut m = m.write();
            let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
            m.update(slot as usize, guard.tuple().values(), e, version);
        } else {
            self.epoch.fetch_add(1, Ordering::SeqCst);
        }
        Ok((out.expect("update closure ran"), version))
    }

    /// Iterates all rows under read latches, calling `f(slot, row)`.
    ///
    /// The iteration sees a consistent prefix: rows appended concurrently
    /// may or may not be visited, matching read-committed scan semantics
    /// used by the OLAP paths.
    pub fn scan(&self, mut f: impl FnMut(u32, &Row)) {
        let rows = self.rows.read();
        for (slot, row) in rows.iter().enumerate() {
            let guard = row.read();
            f(slot as u32, &guard);
        }
    }

    /// Columnar scan with projection and filter pushdown: rows passing
    /// `pred` land in `out`'s typed column vectors, projected to `proj`.
    /// Returns rows scanned pre-filter.
    ///
    /// Mirrored partitions serve this **from the column mirror**: the
    /// predicate is evaluated vectorized over the mirror's typed vectors
    /// and survivors are bulk-copied per column — no per-row tuple walk,
    /// so a cold scan stops paying a tuple-data cache miss per row. The
    /// consistency is that of [`Partition::scan_columns_snapshot`] (whose
    /// certificate this simply discards). Un-mirrored partitions keep the
    /// historical per-row-latch tuple walk.
    ///
    /// Errs only if `proj` is out of range or `out` was typed for another
    /// schema (then `out` is ragged and must be discarded).
    pub fn scan_columns(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<usize> {
        match &self.mirror {
            Some(m) => self.scan_mirror(m, proj, pred, out).map(|s| s.prefix),
            None => self.scan_columns_rows(proj, pred, out),
        }
    }

    /// The un-mirrored fallback: per-row latches, tuple walk.
    fn scan_columns_rows(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<usize> {
        let mut app = out.appender();
        let rows = self.rows.read();
        // Pre-size only unfiltered scans: for selective predicates a
        // full-prefix reservation would pin far more memory than the
        // matches need (and scan outputs can outlive the scan — the
        // shared-scan cache holds them).
        if pred.is_none() {
            app.reserve(rows.len());
        }
        for row in rows.iter() {
            let guard = row.read();
            let values = guard.tuple().values();
            if pred.is_some_and(|p| !p.matches(values)) {
                continue;
            }
            app.push_projected(values, proj)?;
        }
        Ok(rows.len())
    }

    /// Snapshot-consistent columnar scan: like [`Partition::scan_columns`],
    /// but returns the full [`ScanSnapshot`] certificate describing exactly
    /// how consistent the result is (global **and** column-set epochs).
    ///
    /// Mirrored mechanics: the prefix and start epochs are captured under
    /// the mirror's read lock, then rows are copied out of the typed
    /// column vectors in [`SNAPSHOT_CHUNK`]-sized chunks — predicate
    /// evaluated vectorized, survivors gathered per column. Between chunks
    /// the lock is released so racing OLTP writers (who take it for one
    /// row's write-through) are stalled at most one chunk's worth of
    /// copying. Because writers bump the epochs inside the same lock,
    /// equal start/end readings certify the image; and because only
    /// *value-changing* writes touch a column's epoch, a scan raced only
    /// by writes to unrelated columns still certifies
    /// [`ScanSnapshot::is_cols_point_in_time`].
    ///
    /// Un-mirrored partitions fall back to the historical outer-write-lock
    /// tuple walk (global epochs doubling as the column-set epochs).
    ///
    /// Errs only if `proj` is out of range or `out` was typed for another
    /// schema (then `out` is ragged and must be discarded).
    pub fn scan_columns_snapshot(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<ScanSnapshot> {
        match &self.mirror {
            Some(m) => self.scan_mirror(m, proj, pred, out),
            None => self.scan_snapshot_rows(proj, pred, out),
        }
    }

    /// The mirror-backed columnar scan (both entry points above).
    fn scan_mirror(
        &self,
        mirror: &RwLock<Mirror>,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<ScanSnapshot> {
        let pred_cols = pred_columns(pred);
        let mut app = out.appender();
        let mut m = mirror.read();
        let epoch_start = self.epoch.load(Ordering::SeqCst);
        let cols_epoch_start = m.scan_epoch(proj, &pred_cols);
        let prefix = m.rows;
        // See `scan_columns_rows`: only unfiltered scans pre-size for the
        // whole prefix — filtered outputs live on in the shared-scan
        // cache and must not pin a full-prefix reservation.
        if pred.is_none() {
            app.reserve(prefix);
        }
        let mut matched = 0usize;
        let mut sel: Vec<u32> = Vec::new();
        let mut pacer = ChunkPacer::new();
        let mut lo = 0usize;
        while lo < prefix {
            let hi = (lo + pacer.chunk()).min(prefix);
            // Borrows into the guard die at each chunk's lock handoff, so
            // the projected store refs are re-resolved per chunk (O(cols)).
            let stores = {
                let m = &*m;
                let mut stores = Vec::with_capacity(proj.len());
                for &c in proj {
                    stores.push(
                        m.cols
                            .get(c)
                            .ok_or(DbError::SchemaMismatch("projection index out of range"))?,
                    );
                }
                stores
            };
            match pred {
                None => app.extend_from_stores(&stores, lo, hi)?,
                Some(p) => {
                    sel.clear();
                    p.select_stores(&m.cols, lo, hi, &mut sel);
                    app.extend_from_stores_sel(&stores, &sel)?;
                    matched += sel.len();
                }
            }
            lo = hi;
            if lo < prefix {
                // Chunk boundary: let stalled writers in. Slots below
                // `prefix` stay valid — rows are append-only. The epoch
                // delta across the handoff is the pacer's signal: writers
                // bump it under this same lock, so movement here means
                // they were queueing behind the scan.
                let before = self.epoch.load(Ordering::SeqCst);
                drop(m);
                m = mirror.read();
                pacer.observe(self.epoch.load(Ordering::SeqCst) != before);
            }
        }
        if pred.is_none() {
            matched = prefix;
        }
        let cols_epoch_end = m.scan_epoch(proj, &pred_cols);
        let max_version = m.max_version;
        let epoch_end = self.epoch.load(Ordering::SeqCst);
        drop(m);
        Ok(ScanSnapshot {
            prefix,
            matched,
            epoch_start,
            epoch_end,
            cols_epoch_start,
            cols_epoch_end,
            max_version,
        })
    }

    /// The un-mirrored snapshot fallback: a fixed prefix materialized in
    /// chunks under the **outer write lock** — total mutual exclusion per
    /// chunk, per-row latches bypassed via `get_mut` (safe because the
    /// outer write guard proves no writer holds one).
    fn scan_snapshot_rows(
        &self,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<ScanSnapshot> {
        let mut app = out.appender();
        let mut guard = self.rows.write();
        let epoch_start = self.epoch.load(Ordering::SeqCst);
        let prefix = guard.len();
        if pred.is_none() {
            app.reserve(prefix);
        }
        let mut matched = 0usize;
        let mut max_version = 0u64;
        let mut pacer = ChunkPacer::new();
        let mut slot = 0usize;
        while slot < prefix {
            let chunk_end = (slot + pacer.chunk()).min(prefix);
            while slot < chunk_end {
                // Safe latch bypass: we hold the outer lock exclusively,
                // so no row latch can be held by anyone else.
                let row = guard[slot].get_mut();
                max_version = max_version.max(row.version());
                let values = row.tuple().values();
                if pred.is_none_or(|p| p.matches(values)) {
                    app.push_projected(values, proj)?;
                    matched += 1;
                }
                slot += 1;
            }
            if chunk_end < prefix {
                // Chunk boundary: let stalled writers (and appenders) in.
                // Slots below `prefix` stay valid — rows are append-only.
                let before = self.epoch.load(Ordering::SeqCst);
                drop(guard);
                guard = self.rows.write();
                pacer.observe(self.epoch.load(Ordering::SeqCst) != before);
            }
        }
        let epoch_end = self.epoch.load(Ordering::SeqCst);
        drop(guard);
        Ok(ScanSnapshot {
            prefix,
            matched,
            epoch_start,
            epoch_end,
            // No mirror: column granularity unknown, the global epochs
            // are the (conservative) column-set certificate.
            cols_epoch_start: epoch_start,
            cols_epoch_end: epoch_end,
            max_version,
        })
    }

    /// Collects tuples matching `pred` (convenience for scans).
    pub fn collect_matching(&self, mut pred: impl FnMut(&Tuple) -> bool) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.scan(|_, row| {
            if pred(row.tuple()) {
                out.push(row.tuple().clone());
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    /// Both partition flavors, so every test body runs against the mirror
    /// path and the row-walk fallback.
    fn both(types: &[DataType]) -> [Partition; 2] {
        [Partition::with_types(types), Partition::new()]
    }

    #[test]
    fn append_read_update() {
        for p in both(&[DataType::Int]) {
            let s0 = p.append(t(10));
            let s1 = p.append(t(20));
            assert_eq!(s0, 0);
            assert_eq!(s1, 1);
            assert_eq!(p.read_tuple(0).unwrap().0, t(10));
            let ((), v) = p
                .update(1, |tu| {
                    tu.set(0, Value::Int(21));
                })
                .unwrap();
            assert_eq!(v, 1);
            assert_eq!(p.read_tuple(1).unwrap(), (t(21), 1));
        }
    }

    #[test]
    fn out_of_range_errors() {
        let p = Partition::new();
        assert!(p.read_tuple(0).is_err());
        assert!(p.update(3, |_| ()).is_err());
    }

    #[test]
    fn scan_visits_everything() {
        let p = Partition::new();
        for i in 0..100 {
            p.append(t(i));
        }
        let mut sum = 0;
        p.scan(|_, row| sum += row.tuple().get(0).as_int().unwrap());
        assert_eq!(sum, (0..100).sum::<i64>());
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn scan_columns_pushes_down_filter_and_projection() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let types = [DataType::Int, DataType::Str, DataType::Float];
        for p in both(&types) {
            for i in 0..10 {
                p.append(Tuple::new(vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "Even" } else { "odd" }),
                    Value::Float(i as f64),
                ]));
            }
            // Project (float, int), filter on the string column — the filter
            // column is not part of the projection.
            let mut out = ColumnBatch::new(&[DataType::Float, DataType::Int]);
            let pred = ColPredicate::StrPrefix {
                col: 1,
                prefix: "E".into(),
            };
            let scanned = p.scan_columns(&[2, 0], Some(&pred), &mut out).unwrap();
            assert_eq!(scanned, 10);
            assert_eq!(out.rows(), 5);
            assert_eq!(out.column(1).ints().unwrap(), &[0, 2, 4, 6, 8]);
            // No predicate: everything lands.
            let mut all = ColumnBatch::new(&[DataType::Int]);
            p.scan_columns(&[0], None, &mut all).unwrap();
            assert_eq!(all.rows(), 10);
            // Type mismatch surfaces as an error, not a panic.
            let mut wrong = ColumnBatch::new(&[DataType::Str]);
            assert!(p.scan_columns(&[0], None, &mut wrong).is_err());
            // Out-of-range projection too.
            let mut oor = ColumnBatch::new(&[DataType::Int]);
            assert!(p.scan_columns(&[9], None, &mut oor).is_err());
        }
    }

    #[test]
    fn mirror_scan_matches_row_walk_after_updates() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let types = [DataType::Int, DataType::Str, DataType::Float];
        let p = Partition::with_types(&types);
        for i in 0..50 {
            p.append(Tuple::new(vec![
                Value::Int(i),
                Value::str(format!("n{i}")),
                Value::Float(i as f64),
            ]));
        }
        // Mutate through every column type, including repointed strings
        // and nulls.
        p.update(7, |tu| tu.set(1, Value::str("renamed-seven")))
            .unwrap();
        p.update(9, |tu| tu.set(2, Value::Null)).unwrap();
        p.update(11, |tu| tu.set(0, Value::Int(-11))).unwrap();
        let pred = ColPredicate::IntGe { col: 0, min: 5 };
        let proj = [1usize, 2, 0];
        let mut out = ColumnBatch::new(&[DataType::Str, DataType::Float, DataType::Int]);
        p.scan_columns(&proj, Some(&pred), &mut out).unwrap();
        // Row-walk oracle over the latched row store.
        let mut oracle = ColumnBatch::new(&[DataType::Str, DataType::Float, DataType::Int]);
        for tu in p.collect_matching(|tu| pred.matches_tuple(tu)) {
            oracle
                .push_row(&[tu.get(1).clone(), tu.get(2).clone(), tu.get(0).clone()])
                .unwrap();
        }
        assert_eq!(out, oracle);
        assert_eq!(out.column(0).str_at(2), Some("renamed-seven"));
    }

    #[test]
    fn column_epochs_track_only_changed_columns() {
        use anydb_common::{ColPredicate, DataType};
        let p = Partition::with_types(&[DataType::Int, DataType::Float, DataType::Str]);
        p.append(Tuple::new(vec![
            Value::Int(1),
            Value::Float(1.0),
            Value::str("a"),
        ]));
        let e_all = p.cols_epoch(&[0, 1, 2], None);
        assert_eq!(e_all, p.epoch(), "append dirties every column set");
        // Update column 1 only: column sets without it keep their epoch.
        let e0 = p.cols_epoch(&[0], None);
        p.update(0, |tu| tu.set(1, Value::Float(2.0))).unwrap();
        assert_eq!(p.cols_epoch(&[0], None), e0, "col 0 untouched");
        assert_eq!(p.cols_epoch(&[2], None), e0, "col 2 untouched");
        assert!(p.cols_epoch(&[1], None) > e0, "col 1 dirtied");
        assert!(
            p.cols_epoch(&[0, 1], None) > e0,
            "any set containing col 1 dirtied"
        );
        // The predicate's columns count toward the set.
        let pred = ColPredicate::IntGe { col: 1, min: 0 };
        assert!(p.cols_epoch(&[0], Some(&pred.at(1))) > e0);
        // An identity update changes no value: no column epoch moves,
        // though the global epoch does.
        let g = p.epoch();
        let e1 = p.cols_epoch(&[0, 1, 2], None);
        p.update(0, |tu| tu.set(1, Value::Float(2.0))).unwrap();
        assert!(p.epoch() > g);
        assert_eq!(p.cols_epoch(&[0, 1, 2], None), e1, "no value changed");
        // A fresh append dirties everything again.
        p.append(Tuple::new(vec![
            Value::Int(2),
            Value::Float(0.0),
            Value::str("b"),
        ]));
        assert!(p.cols_epoch(&[0], None) > e1);
    }

    #[test]
    fn snapshot_scan_matches_plain_scan_when_quiescent() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let types = [DataType::Int, DataType::Int];
        for p in both(&types) {
            for i in 0..2500 {
                // More rows than one SNAPSHOT_CHUNK, to cross a chunk boundary.
                p.append(Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]));
            }
            let pred = ColPredicate::IntBetween {
                col: 0,
                min: 100,
                max: 1999,
            };
            let mut snap_out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
            let snap = p
                .scan_columns_snapshot(&[0, 1], Some(&pred), &mut snap_out)
                .unwrap();
            let mut plain_out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
            p.scan_columns(&[0, 1], Some(&pred), &mut plain_out)
                .unwrap();
            assert_eq!(snap_out, plain_out);
            assert_eq!(snap.prefix, 2500);
            assert_eq!(snap.matched, 1900);
            assert_eq!(snap.matched, snap_out.rows());
            assert!(snap.is_point_in_time(), "no writer raced: {snap:?}");
            assert!(snap.is_cols_point_in_time());
            assert_eq!(snap.max_version, 0);
        }
    }

    #[test]
    fn snapshot_reports_epoch_movement_and_versions() {
        use anydb_common::{ColumnBatch, DataType};
        for p in both(&[DataType::Int]) {
            p.append(t(1));
            let e0 = p.epoch();
            p.update(0, |tu| tu.set(0, Value::Int(2))).unwrap();
            assert!(p.epoch() > e0, "update must bump the epoch");
            p.append(t(3));
            let mut out = ColumnBatch::new(&[DataType::Int]);
            let snap = p.scan_columns_snapshot(&[0], None, &mut out).unwrap();
            assert_eq!(snap.prefix, 2);
            assert_eq!(snap.max_version, 1);
            assert!(snap.is_point_in_time());
            assert_eq!(out.column(0).ints().unwrap(), &[2, 3]);
        }
    }

    #[test]
    fn snapshot_scan_excludes_rows_appended_after_capture() {
        // The snapshot prefix is fixed at entry; an append racing the scan
        // lands after the prefix and must not appear. (Deterministic
        // variant: append between two scans and compare certificates.)
        use anydb_common::{ColumnBatch, DataType};
        for p in both(&[DataType::Int]) {
            for i in 0..10 {
                p.append(t(i));
            }
            let mut out = ColumnBatch::new(&[DataType::Int]);
            let snap = p.scan_columns_snapshot(&[0], None, &mut out).unwrap();
            p.append(t(99));
            let mut out2 = ColumnBatch::new(&[DataType::Int]);
            let snap2 = p.scan_columns_snapshot(&[0], None, &mut out2).unwrap();
            assert_eq!(snap.prefix, 10);
            assert_eq!(snap2.prefix, 11);
            assert!(snap2.epoch_start > snap.epoch_end);
            assert!(snap2.cols_epoch_start > snap.cols_epoch_end);
            assert_eq!(out2.rows(), 11);
        }
    }

    #[test]
    fn append_with_reserve_failure_publishes_nothing() {
        let p = Partition::with_types(&[DataType::Int]);
        p.append(t(1));
        let e = p.epoch();
        let err = p.append_with(t(2), |slot| {
            assert_eq!(slot, 1, "reserve sees the slot the row would take");
            Err("rejected")
        });
        assert_eq!(err, Err("rejected"));
        assert_eq!(p.len(), 1, "nothing published");
        assert_eq!(p.epoch(), e, "no epoch bump — cached scans stay valid");
        let mut out = ColumnBatch::new(&[DataType::Int]);
        p.scan_columns(&[0], None, &mut out).unwrap();
        assert_eq!(out.rows(), 1, "mirror untouched");
        // And a successful reserve publishes normally.
        assert_eq!(p.append_with::<()>(t(2), |_| Ok(())), Ok(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn collect_matching_filters() {
        let p = Partition::new();
        for i in 0..10 {
            p.append(t(i));
        }
        let got = p.collect_matching(|tu| tu.get(0).as_int().unwrap() % 2 == 0);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn concurrent_updates_are_isolated_per_row() {
        for base in both(&[DataType::Int]) {
            let p = std::sync::Arc::new(base);
            p.append(t(0));
            p.append(t(0));
            let mut handles = Vec::new();
            for slot in 0..2u32 {
                let p = p.clone();
                handles.push(std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        p.update(slot, |tu| {
                            let v = tu.get(0).as_int().unwrap();
                            tu.set(0, Value::Int(v + 1));
                        })
                        .unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(p.read_tuple(0).unwrap().0, t(10_000));
            assert_eq!(p.read_tuple(1).unwrap().0, t(10_000));
        }
    }

    #[test]
    fn concurrent_appends_do_not_lose_rows() {
        for base in both(&[DataType::Int]) {
            let p = std::sync::Arc::new(base);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let p = p.clone();
                handles.push(std::thread::spawn(move || {
                    for i in 0..1000 {
                        p.append(t(i));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(p.len(), 4000);
            let mut out = ColumnBatch::new(&[DataType::Int]);
            let scanned = p.scan_columns(&[0], None, &mut out).unwrap();
            assert_eq!(scanned, 4000);
            assert_eq!(out.rows(), 4000, "mirror kept pace with appends");
        }
    }

    #[test]
    fn chunk_pacer_sheds_under_writer_pressure_and_recovers() {
        let mut p = ChunkPacer::new();
        assert_eq!(p.chunk(), SNAPSHOT_CHUNK);
        // Writers queueing at every handoff: shrink to the floor, never
        // below it.
        for _ in 0..10 {
            p.observe(true);
        }
        assert_eq!(p.chunk(), ChunkPacer::MIN);
        // Quiet handoffs: grow to the ceiling, never past it.
        for _ in 0..10 {
            p.observe(false);
        }
        assert_eq!(p.chunk(), ChunkPacer::MAX);
    }

    #[test]
    fn paced_scan_stays_consistent_under_concurrent_writes() {
        // A scan crossing many (small) chunk boundaries while writers
        // race it must still return only fully published rows.
        for base in both(&[DataType::Int]) {
            let p = std::sync::Arc::new(base);
            for i in 0..5000 {
                p.append(t(i));
            }
            let writer = {
                let p = p.clone();
                std::thread::spawn(move || {
                    for i in 0..2000 {
                        p.append(t(100_000 + i));
                    }
                })
            };
            let mut out = ColumnBatch::new(&[DataType::Int]);
            let snap = p.scan_columns_snapshot(&[0], None, &mut out).unwrap();
            writer.join().unwrap();
            // Every row the scan returned is a real, complete row.
            assert_eq!(out.rows(), snap.prefix);
            assert!(snap.prefix >= 5000);
        }
    }
}
