//! The physical database: a collection of partitioned tables.

use std::sync::Arc;

use anydb_common::fxmap::FxHashMap;
use anydb_common::{DbError, DbResult, PartitionId, TableId, Value};
use parking_lot::RwLock;

use crate::catalog::{Catalog, TableSpec};
use crate::key::IndexKey;
use crate::table::Table;

/// Maps tuples to partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Everything in partition 0 (small reference tables, e.g. TPC-C item).
    Single,
    /// `partition = (int_column - offset) % partition_count`. The TPC-C
    /// tables use the leading warehouse-id column with offset 1.
    ByColumn {
        /// Tuple column holding the partitioning integer.
        column: usize,
        /// Subtracted before the modulo (ids are often 1-based).
        offset: i64,
    },
}

impl Partitioner {
    /// Column partitioner with a 1-based id convention.
    pub fn by_warehouse(column: usize) -> Self {
        Partitioner::ByColumn { column, offset: 1 }
    }

    /// Column partitioner with explicit offset.
    pub fn by_column(column: usize, offset: i64) -> Self {
        Partitioner::ByColumn { column, offset }
    }

    /// Partition for a full tuple.
    pub fn partition_of(&self, values: &[Value], partitions: u32) -> DbResult<PartitionId> {
        match self {
            Partitioner::Single => Ok(PartitionId(0)),
            Partitioner::ByColumn { column, offset } => {
                let v = values
                    .get(*column)
                    .ok_or(DbError::SchemaMismatch("partition column out of range"))?
                    .as_int()?;
                Ok(Self::fold(v - offset, partitions))
            }
        }
    }

    /// Partition for a primary key. Requires the partitioning column to be
    /// the leading primary-key column (true for every TPC-C table), so the
    /// key's first component determines placement.
    pub fn partition_of_key(&self, key: &IndexKey, partitions: u32) -> DbResult<PartitionId> {
        match self {
            Partitioner::Single => Ok(PartitionId(0)),
            Partitioner::ByColumn { offset, .. } => {
                let v = key.leading_int().ok_or(DbError::SchemaMismatch(
                    "key must lead with partition column",
                ))?;
                Ok(Self::fold(v - offset, partitions))
            }
        }
    }

    #[inline]
    fn fold(v: i64, partitions: u32) -> PartitionId {
        PartitionId((v.rem_euclid(partitions as i64)) as u32)
    }
}

/// The physical database.
///
/// `Store` is shared (`Arc`) between all ACs / transaction executors; the
/// tables inside provide their own fine-grained synchronization.
#[derive(Default)]
pub struct Store {
    tables: RwLock<Vec<Arc<Table>>>,
    by_name: RwLock<FxHashMap<String, TableId>>,
    catalog: Catalog,
}

impl Store {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from a spec, registering it in the catalog.
    pub fn create_table(&self, spec: TableSpec) -> DbResult<Arc<Table>> {
        let mut tables = self.tables.write();
        let mut by_name = self.by_name.write();
        let name = spec.schema.name().to_string();
        if by_name.contains_key(&name) {
            return Err(DbError::Config(format!("table '{name}' already exists")));
        }
        let id = TableId(tables.len() as u32);
        let table = Arc::new(Table::new(
            id,
            spec.schema.clone(),
            spec.partitioner,
            spec.partitions,
            spec.secondaries.clone(),
        ));
        tables.push(table.clone());
        by_name.insert(name, id);
        self.catalog.register(id, spec);
        Ok(table)
    }

    /// Looks a table up by id.
    pub fn table(&self, id: TableId) -> DbResult<Arc<Table>> {
        self.tables
            .read()
            .get(id.index())
            .cloned()
            .ok_or(DbError::UnknownTable(id))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> DbResult<Arc<Table>> {
        let id = *self
            .by_name
            .read()
            .get(name)
            .ok_or_else(|| DbError::UnknownTableName(name.to_string()))?;
        self.table(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.read().len()
    }

    /// The catalog (metadata + statistics input for the QO).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All tables (snapshot), for scans/statistics.
    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.tables.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::{ColumnDef, DataType, Schema, Tuple};

    fn spec(name: &str, partitions: u32) -> TableSpec {
        TableSpec::new(
            Schema::new(
                name,
                vec![
                    ColumnDef::new("w_id", DataType::Int),
                    ColumnDef::new("v", DataType::Int),
                ],
                &["w_id"],
            ),
            partitions,
            Partitioner::by_warehouse(0),
        )
    }

    #[test]
    fn create_and_lookup() {
        let store = Store::new();
        let t = store.create_table(spec("wh", 4)).unwrap();
        assert_eq!(t.id(), TableId(0));
        assert_eq!(store.table(TableId(0)).unwrap().id(), TableId(0));
        assert_eq!(store.table_by_name("wh").unwrap().id(), TableId(0));
        assert!(store.table_by_name("nope").is_err());
        assert!(store.table(TableId(9)).is_err());
        assert_eq!(store.table_count(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let store = Store::new();
        store.create_table(spec("t", 1)).unwrap();
        assert!(store.create_table(spec("t", 1)).is_err());
    }

    #[test]
    fn partitioner_by_warehouse_is_one_based() {
        let p = Partitioner::by_warehouse(0);
        let t = |w: i64| vec![Value::Int(w), Value::Int(0)];
        assert_eq!(p.partition_of(&t(1), 4).unwrap(), PartitionId(0));
        assert_eq!(p.partition_of(&t(4), 4).unwrap(), PartitionId(3));
        assert_eq!(p.partition_of(&t(5), 4).unwrap(), PartitionId(0));
    }

    #[test]
    fn partitioner_key_and_tuple_agree() {
        let p = Partitioner::by_warehouse(0);
        for w in 1..=8i64 {
            let by_tuple = p.partition_of(&[Value::Int(w), Value::Int(9)], 4).unwrap();
            let by_key = p.partition_of_key(&crate::key::int_key(w), 4).unwrap();
            assert_eq!(by_tuple, by_key);
        }
    }

    #[test]
    fn single_partitioner_always_zero() {
        let p = Partitioner::Single;
        assert_eq!(
            p.partition_of(&[Value::Int(42)], 8).unwrap(),
            PartitionId(0)
        );
    }

    #[test]
    fn partitioner_handles_negative_ids() {
        let p = Partitioner::by_column(0, 0);
        // rem_euclid keeps partitions in range even for negatives.
        assert_eq!(
            p.partition_of(&[Value::Int(-3)], 4).unwrap(),
            PartitionId(1)
        );
    }

    #[test]
    fn store_tables_snapshot() {
        let store = Store::new();
        store.create_table(spec("a", 1)).unwrap();
        store.create_table(spec("b", 2)).unwrap();
        let ts = store.tables();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[1].partition_count(), 2);
    }

    #[test]
    fn end_to_end_insert_via_store() {
        let store = Store::new();
        let t = store.create_table(spec("wh", 2)).unwrap();
        let rid = t
            .insert(Tuple::new(vec![Value::Int(2), Value::Int(7)]))
            .unwrap();
        assert_eq!(rid.partition, PartitionId(1));
        assert_eq!(store.catalog().table_names(), vec!["wh".to_string()]);
    }
}
