//! Recovery: replay a write-ahead log into a freshly loaded store.
//!
//! The model is snapshot + redo: recovery starts from the initially loaded
//! database (the "snapshot") and re-applies the operations of *committed*
//! transactions in LSN order. Records of uncommitted or aborted
//! transactions are skipped; updates are full after-images, so replay is
//! idempotent.

use anydb_common::commit::PrepOp;
use anydb_common::fxmap::{FxHashMap, FxHashSet};
use anydb_common::{DbError, DbResult, Rid, TxnId};

use crate::key::IndexKey;
use crate::store::Store;
use crate::wal::{LogOp, LogRecord, Wal};

/// Statistics of one recovery run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed transactions replayed.
    pub committed: usize,
    /// Transactions skipped (aborted or in-flight at the crash).
    pub skipped: usize,
    /// Insert operations applied.
    pub inserts: usize,
    /// Insert operations the store already contained at the logged RID
    /// (snapshot taken after the insert, or the log replayed twice) —
    /// skipped, not re-applied.
    pub redundant_inserts: usize,
    /// Update operations applied.
    pub updates: usize,
}

/// Replays `wal` into `store`. The store must already contain the tables
/// and the pre-crash snapshot data.
pub fn replay(wal: &Wal, store: &Store) -> DbResult<RecoveryStats> {
    replay_records(&wal.snapshot(), store)
}

/// Replays explicit records (e.g. deserialized from "disk").
pub fn replay_records(records: &[LogRecord], store: &Store) -> DbResult<RecoveryStats> {
    // Pass 1: find transactions that made it to commit.
    let mut committed: FxHashSet<TxnId> = FxHashSet::default();
    let mut seen: FxHashSet<TxnId> = FxHashSet::default();
    for r in records {
        seen.insert(r.txn);
        if matches!(r.op, LogOp::Commit) {
            committed.insert(r.txn);
        }
    }

    // Pass 2: redo committed work in LSN order.
    let mut stats = RecoveryStats {
        committed: committed.len(),
        skipped: seen.len() - committed.len(),
        ..Default::default()
    };
    for r in records {
        if !committed.contains(&r.txn) {
            continue;
        }
        match &r.op {
            LogOp::Insert {
                table,
                partition,
                slot,
                tuple,
            } => {
                let t = store.table(*table)?;
                let want = Rid::new(*table, *partition, *slot);
                match t.insert(tuple.clone()) {
                    Ok(rid) => {
                        if rid != want {
                            return Err(DbError::CorruptLog(r.lsn));
                        }
                        stats.inserts += 1;
                    }
                    // Idempotence: a row already present (snapshot taken
                    // after the insert, or the log replayed twice) is fine
                    // iff the existing row sits at the logged RID — then
                    // replay and snapshot agree and the insert is a no-op.
                    // A duplicate insert leaves no trace in the store (see
                    // `Table::insert`), so a mismatch is detectable and
                    // ghost-free.
                    Err(DbError::DuplicateKey(_)) => {
                        let pk = IndexKey::from_values(tuple.values(), t.schema().primary_key())
                            .map_err(|_| DbError::CorruptLog(r.lsn))?;
                        if t.get_rid(&pk) != Ok(want) {
                            return Err(DbError::CorruptLog(r.lsn));
                        }
                        stats.redundant_inserts += 1;
                    }
                    Err(other) => return Err(other),
                }
            }
            LogOp::Update { rid, after } => {
                let t = store.table(rid.table)?;
                let after = after.clone();
                t.update(*rid, move |tuple| {
                    *tuple = after;
                })
                .map_err(|_| DbError::CorruptLog(r.lsn))?;
                stats.updates += 1;
            }
            // 2PC bookkeeping records carry no redo work of their own:
            // the writes a Decide(commit) authorizes are re-logged as
            // ordinary Insert records when applied, so redo replays those.
            // [`twopc_scan`] is the pass that interprets these records.
            LogOp::Commit | LogOp::Abort | LogOp::Prepare { .. } | LogOp::Decide { .. } => {}
        }
    }
    Ok(stats)
}

/// The recovered 2PC state of one distributed transaction, extracted
/// from a WAL by [`twopc_scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct PcTxn {
    /// The distributed transaction.
    pub txn: TxnId,
    /// Coordinating node recorded in the (latest) Prepare record.
    pub coord: u32,
    /// The staged writes from that Prepare record.
    pub ops: Vec<PrepOp>,
    /// The decision, if one was logged after the latest Prepare. `None`
    /// means in-doubt: a participant must re-ask `coord`, a coordinator
    /// presumes abort.
    pub decision: Option<bool>,
    /// Remote participants the decision was still owed to (from the
    /// coordinator's Decide record; empty on participants).
    pub parts: Vec<u32>,
    /// Whether the staged writes were already applied (a Commit record
    /// for the transaction follows the decision). A decided-commit
    /// transaction with `applied == false` crashed between logging the
    /// decision and applying it — recovery must apply `ops` now.
    pub applied: bool,
}

/// Scans a log for two-phase-commit state: for every transaction with a
/// Prepare record, the latest staged ops, the decision (if logged), and
/// whether the decided writes were applied. A Prepare *after* a Decide
/// supersedes it (a fresh attempt under a reused transaction id), which
/// is why this is a single ordered pass rather than a set union.
pub fn twopc_scan(records: &[LogRecord]) -> Vec<PcTxn> {
    let mut order: Vec<TxnId> = Vec::new();
    let mut state: FxHashMap<TxnId, PcTxn> = FxHashMap::default();
    for r in records {
        match &r.op {
            LogOp::Prepare { coord, ops } => {
                if !state.contains_key(&r.txn) {
                    order.push(r.txn);
                }
                state.insert(
                    r.txn,
                    PcTxn {
                        txn: r.txn,
                        coord: *coord,
                        ops: ops.clone(),
                        decision: None,
                        parts: Vec::new(),
                        applied: false,
                    },
                );
            }
            LogOp::Decide { commit, parts } => {
                if let Some(pc) = state.get_mut(&r.txn) {
                    pc.decision = Some(*commit);
                    pc.parts = parts.clone();
                    pc.applied = false;
                }
            }
            LogOp::Commit => {
                if let Some(pc) = state.get_mut(&r.txn) {
                    if pc.decision.is_some() {
                        pc.applied = true;
                    }
                }
            }
            _ => {}
        }
    }
    order.into_iter().filter_map(|t| state.remove(&t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSpec;
    use crate::store::Partitioner;
    use anydb_common::{ColumnDef, DataType, PartitionId, Schema, TableId, Tuple, Value};

    fn fresh_store() -> Store {
        let store = Store::new();
        store
            .create_table(TableSpec::new(
                Schema::new(
                    "t",
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("v", DataType::Int),
                    ],
                    &["id"],
                ),
                1,
                Partitioner::Single,
            ))
            .unwrap();
        store
    }

    fn tuple(id: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(id), Value::Int(v)])
    }

    /// Runs ops against a store while logging, then replays the log into a
    /// fresh store and compares.
    #[test]
    fn committed_work_is_replayed() {
        let live = fresh_store();
        let wal = Wal::new();
        let t = live.table(TableId(0)).unwrap();

        // txn 1: insert + update, committed
        let rid = t.insert(tuple(1, 10)).unwrap();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: rid.partition,
                slot: rid.slot,
                tuple: tuple(1, 10),
            },
        );
        t.update(rid, |tu| {
            tu.set(1, Value::Int(11));
        })
        .unwrap();
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid,
                after: tuple(1, 11),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);

        // txn 2: update, never committed (crash)
        wal.append(
            TxnId(2),
            LogOp::Update {
                rid,
                after: tuple(1, 99),
            },
        );

        let recovered = fresh_store();
        let stats = replay(&wal, &recovered).unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.updates, 1);

        let rt = recovered.table(TableId(0)).unwrap();
        let (got, _) = rt.read(Rid::new(TableId(0), PartitionId(0), 0)).unwrap();
        assert_eq!(got, tuple(1, 11));
    }

    #[test]
    fn aborted_txn_is_skipped() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Abort);
        let store = fresh_store();
        let stats = replay(&wal, &store).unwrap();
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.skipped, 1);
        assert_eq!(store.table(TableId(0)).unwrap().row_count(), 0);
    }

    #[test]
    fn update_to_missing_row_is_corrupt() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(0), 5),
                after: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let store = fresh_store();
        assert!(matches!(replay(&wal, &store), Err(DbError::CorruptLog(_))));
    }

    #[test]
    fn slot_mismatch_is_corrupt() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 7, // replay will produce slot 0
                tuple: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let store = fresh_store();
        assert!(matches!(replay(&wal, &store), Err(DbError::CorruptLog(_))));
    }

    #[test]
    fn replay_is_idempotent() {
        // Replaying the same log into the same store twice must be a
        // no-op the second time: inserts already present at their logged
        // RIDs are skipped (counted as redundant), updates are full
        // after-images.
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(1, 10),
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(0), 0),
                after: tuple(1, 11),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let store = fresh_store();
        let first = replay(&wal, &store).unwrap();
        assert_eq!(first.inserts, 1);
        assert_eq!(first.redundant_inserts, 0);
        let second = replay(&wal, &store).unwrap();
        assert_eq!(second.inserts, 0);
        assert_eq!(second.redundant_inserts, 1);
        assert_eq!(second.updates, 1);
        let t = store.table(TableId(0)).unwrap();
        assert_eq!(t.row_count(), 1, "second replay appended no ghost");
        let (got, _) = t.read(Rid::new(TableId(0), PartitionId(0), 0)).unwrap();
        assert_eq!(got, tuple(1, 11));
    }

    #[test]
    fn duplicate_at_wrong_slot_is_corrupt_and_ghost_free() {
        // A logged insert whose key exists at a *different* RID is real
        // corruption — and the failed replay must not leave a ghost row
        // behind (regression: the pre-fix insert appended before probing
        // the index, so every replayed duplicate grew the table).
        let store = fresh_store();
        let t = store.table(TableId(0)).unwrap();
        t.insert(tuple(1, 10)).unwrap(); // occupies slot 0
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 3, // key exists, but at slot 0
                tuple: tuple(1, 10),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        assert!(matches!(replay(&wal, &store), Err(DbError::CorruptLog(_))));
        assert_eq!(t.row_count(), 1, "failed replay left no ghost");
    }

    #[test]
    fn replay_rebuilds_the_column_mirror() {
        // The mirror is maintained write-through by the same
        // insert/update paths replay drives, so a recovered store's
        // columnar scans must agree with the live store's.
        use anydb_common::{ColumnBatch, DataType};
        let live = fresh_store();
        let wal = Wal::new();
        let t = live.table(TableId(0)).unwrap();
        for id in 0..50i64 {
            let tu = tuple(id, id * 10);
            let rid = t.insert(tu.clone()).unwrap();
            wal.append(
                TxnId(id as u64),
                LogOp::Insert {
                    table: TableId(0),
                    partition: rid.partition,
                    slot: rid.slot,
                    tuple: tu,
                },
            );
            if id % 3 == 0 {
                t.update(rid, |x| x.set(1, Value::Int(-id))).unwrap();
                wal.append(
                    TxnId(id as u64),
                    LogOp::Update {
                        rid,
                        after: tuple(id, -id),
                    },
                );
            }
            wal.append(TxnId(id as u64), LogOp::Commit);
        }
        let recovered = fresh_store();
        replay(&wal, &recovered).unwrap();
        let rt = recovered.table(TableId(0)).unwrap();
        let scan = |table: &crate::table::Table| {
            let mut out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
            table
                .scan_columns(PartitionId(0), &[0, 1], None, &mut out)
                .unwrap();
            out
        };
        let live_cols = scan(&t);
        assert_eq!(live_cols.rows(), 50);
        assert_eq!(scan(&rt), live_cols, "mirror rebuilt from the log");
    }

    fn prep_ops(id: i64) -> Vec<PrepOp> {
        vec![PrepOp {
            table: TableId(0),
            tuple: tuple(id, id * 10),
        }]
    }

    #[test]
    fn twopc_records_replay_twice_without_side_effects() {
        // Satellite: double-replay idempotence over Prepare/Decide. A log
        // holding the full 2PC lifecycle of one committed cross-shard
        // transaction — Prepare, Decide, then the applied Insert+Commit —
        // replays into the same store twice with identical visible state,
        // and the 2PC records themselves redo nothing.
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Prepare {
                coord: 0,
                ops: prep_ops(1),
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Decide {
                commit: true,
                parts: vec![1],
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(1, 10),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        // And one staged-but-undecided transaction: replay must not leak
        // its ops into the store on either pass.
        wal.append(
            TxnId(2),
            LogOp::Prepare {
                coord: 1,
                ops: prep_ops(2),
            },
        );

        let store = fresh_store();
        let first = replay(&wal, &store).unwrap();
        assert_eq!(first.committed, 1);
        assert_eq!(first.skipped, 1, "staged txn counted as in-flight");
        assert_eq!(first.inserts, 1);
        let second = replay(&wal, &store).unwrap();
        assert_eq!(second.inserts, 0);
        assert_eq!(second.redundant_inserts, 1);
        let t = store.table(TableId(0)).unwrap();
        assert_eq!(t.row_count(), 1, "double replay appended no ghost");
        let (got, _) = t.read(Rid::new(TableId(0), PartitionId(0), 0)).unwrap();
        assert_eq!(got, tuple(1, 10));

        // The serialized round-trip carries the 2PC records intact.
        let from_bytes = Wal::deserialize(wal.serialize()).unwrap();
        assert_eq!(from_bytes, wal.snapshot());
    }

    #[test]
    fn twopc_scan_classifies_every_lifecycle_stage() {
        let wal = Wal::new();
        // txn 1: decided commit and fully applied.
        wal.append(
            TxnId(1),
            LogOp::Prepare {
                coord: 0,
                ops: prep_ops(1),
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Decide {
                commit: true,
                parts: vec![2],
            },
        );
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(1, 10),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        // txn 2: decided commit but the crash hit before the apply.
        wal.append(
            TxnId(2),
            LogOp::Prepare {
                coord: 0,
                ops: prep_ops(2),
            },
        );
        wal.append(
            TxnId(2),
            LogOp::Decide {
                commit: true,
                parts: Vec::new(),
            },
        );
        // txn 3: staged, in doubt (no decision).
        wal.append(
            TxnId(3),
            LogOp::Prepare {
                coord: 7,
                ops: prep_ops(3),
            },
        );
        // txn 4: decided abort.
        wal.append(
            TxnId(4),
            LogOp::Prepare {
                coord: 0,
                ops: prep_ops(4),
            },
        );
        wal.append(
            TxnId(4),
            LogOp::Decide {
                commit: false,
                parts: Vec::new(),
            },
        );
        // txn 5: aborted first attempt, then a fresh Prepare supersedes
        // the old decision — it is in doubt again.
        wal.append(
            TxnId(5),
            LogOp::Prepare {
                coord: 1,
                ops: prep_ops(5),
            },
        );
        wal.append(
            TxnId(5),
            LogOp::Decide {
                commit: false,
                parts: Vec::new(),
            },
        );
        wal.append(
            TxnId(5),
            LogOp::Prepare {
                coord: 1,
                ops: prep_ops(50),
            },
        );

        let scan = twopc_scan(&wal.snapshot());
        assert_eq!(scan.len(), 5);
        assert_eq!(scan[0].decision, Some(true));
        assert!(scan[0].applied);
        assert_eq!(scan[0].parts, vec![2]);
        assert_eq!(scan[1].decision, Some(true));
        assert!(!scan[1].applied, "crash before apply must be visible");
        assert_eq!(scan[2].decision, None);
        assert_eq!(scan[2].coord, 7);
        assert_eq!(scan[3].decision, Some(false));
        assert_eq!(scan[4].decision, None, "re-prepare supersedes decide");
        assert_eq!(scan[4].ops, prep_ops(50));
    }

    #[test]
    fn replay_of_serialized_log_matches_live_replay() {
        let wal = Wal::new();
        wal.append(
            TxnId(3),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(9, 90),
            },
        );
        wal.append(TxnId(3), LogOp::Commit);

        let from_bytes = Wal::deserialize(wal.serialize()).unwrap();
        let a = fresh_store();
        let b = fresh_store();
        let sa = replay(&wal, &a).unwrap();
        let sb = replay_records(&from_bytes, &b).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(
            a.table(TableId(0)).unwrap().row_count(),
            b.table(TableId(0)).unwrap().row_count()
        );
    }
}
