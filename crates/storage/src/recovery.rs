//! Recovery: replay a write-ahead log into a freshly loaded store.
//!
//! The model is snapshot + redo: recovery starts from the initially loaded
//! database (the "snapshot") and re-applies the operations of *committed*
//! transactions in LSN order. Records of uncommitted or aborted
//! transactions are skipped; updates are full after-images, so replay is
//! idempotent.

use anydb_common::fxmap::FxHashSet;
use anydb_common::{DbError, DbResult, Rid, TxnId};

use crate::store::Store;
use crate::wal::{LogOp, LogRecord, Wal};

/// Statistics of one recovery run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Committed transactions replayed.
    pub committed: usize,
    /// Transactions skipped (aborted or in-flight at the crash).
    pub skipped: usize,
    /// Insert operations applied.
    pub inserts: usize,
    /// Update operations applied.
    pub updates: usize,
}

/// Replays `wal` into `store`. The store must already contain the tables
/// and the pre-crash snapshot data.
pub fn replay(wal: &Wal, store: &Store) -> DbResult<RecoveryStats> {
    replay_records(&wal.snapshot(), store)
}

/// Replays explicit records (e.g. deserialized from "disk").
pub fn replay_records(records: &[LogRecord], store: &Store) -> DbResult<RecoveryStats> {
    // Pass 1: find transactions that made it to commit.
    let mut committed: FxHashSet<TxnId> = FxHashSet::default();
    let mut seen: FxHashSet<TxnId> = FxHashSet::default();
    for r in records {
        seen.insert(r.txn);
        if matches!(r.op, LogOp::Commit) {
            committed.insert(r.txn);
        }
    }

    // Pass 2: redo committed work in LSN order.
    let mut stats = RecoveryStats {
        committed: committed.len(),
        skipped: seen.len() - committed.len(),
        ..Default::default()
    };
    for r in records {
        if !committed.contains(&r.txn) {
            continue;
        }
        match &r.op {
            LogOp::Insert {
                table,
                partition,
                slot,
                tuple,
            } => {
                let t = store.table(*table)?;
                let rid = t.insert(tuple.clone()).map_err(|e| match e {
                    // Idempotence: a row already present (snapshot taken
                    // after the insert) is fine only if the slot matches.
                    DbError::DuplicateKey(_) => DbError::CorruptLog(r.lsn),
                    other => other,
                })?;
                if rid != Rid::new(*table, *partition, *slot) {
                    return Err(DbError::CorruptLog(r.lsn));
                }
                stats.inserts += 1;
            }
            LogOp::Update { rid, after } => {
                let t = store.table(rid.table)?;
                let after = after.clone();
                t.update(*rid, move |tuple| {
                    *tuple = after;
                })
                .map_err(|_| DbError::CorruptLog(r.lsn))?;
                stats.updates += 1;
            }
            LogOp::Commit | LogOp::Abort => {}
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableSpec;
    use crate::store::Partitioner;
    use anydb_common::{ColumnDef, DataType, PartitionId, Schema, TableId, Tuple, Value};

    fn fresh_store() -> Store {
        let store = Store::new();
        store
            .create_table(TableSpec::new(
                Schema::new(
                    "t",
                    vec![
                        ColumnDef::new("id", DataType::Int),
                        ColumnDef::new("v", DataType::Int),
                    ],
                    &["id"],
                ),
                1,
                Partitioner::Single,
            ))
            .unwrap();
        store
    }

    fn tuple(id: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(id), Value::Int(v)])
    }

    /// Runs ops against a store while logging, then replays the log into a
    /// fresh store and compares.
    #[test]
    fn committed_work_is_replayed() {
        let live = fresh_store();
        let wal = Wal::new();
        let t = live.table(TableId(0)).unwrap();

        // txn 1: insert + update, committed
        let rid = t.insert(tuple(1, 10)).unwrap();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: rid.partition,
                slot: rid.slot,
                tuple: tuple(1, 10),
            },
        );
        t.update(rid, |tu| {
            tu.set(1, Value::Int(11));
        })
        .unwrap();
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid,
                after: tuple(1, 11),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);

        // txn 2: update, never committed (crash)
        wal.append(
            TxnId(2),
            LogOp::Update {
                rid,
                after: tuple(1, 99),
            },
        );

        let recovered = fresh_store();
        let stats = replay(&wal, &recovered).unwrap();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.skipped, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.updates, 1);

        let rt = recovered.table(TableId(0)).unwrap();
        let (got, _) = rt.read(Rid::new(TableId(0), PartitionId(0), 0)).unwrap();
        assert_eq!(got, tuple(1, 11));
    }

    #[test]
    fn aborted_txn_is_skipped() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Abort);
        let store = fresh_store();
        let stats = replay(&wal, &store).unwrap();
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.skipped, 1);
        assert_eq!(store.table(TableId(0)).unwrap().row_count(), 0);
    }

    #[test]
    fn update_to_missing_row_is_corrupt() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(0), 5),
                after: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let store = fresh_store();
        assert!(matches!(replay(&wal, &store), Err(DbError::CorruptLog(_))));
    }

    #[test]
    fn slot_mismatch_is_corrupt() {
        let wal = Wal::new();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 7, // replay will produce slot 0
                tuple: tuple(1, 1),
            },
        );
        wal.append(TxnId(1), LogOp::Commit);
        let store = fresh_store();
        assert!(matches!(replay(&wal, &store), Err(DbError::CorruptLog(_))));
    }

    #[test]
    fn replay_of_serialized_log_matches_live_replay() {
        let wal = Wal::new();
        wal.append(
            TxnId(3),
            LogOp::Insert {
                table: TableId(0),
                partition: PartitionId(0),
                slot: 0,
                tuple: tuple(9, 90),
            },
        );
        wal.append(TxnId(3), LogOp::Commit);

        let from_bytes = Wal::deserialize(wal.serialize()).unwrap();
        let a = fresh_store();
        let b = fresh_store();
        let sa = replay(&wal, &a).unwrap();
        let sb = replay_records(&from_bytes, &b).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(
            a.table(TableId(0)).unwrap().row_count(),
            b.table(TableId(0)).unwrap().row_count()
        );
    }
}
