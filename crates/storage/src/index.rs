//! Hash and ordered indexes.
//!
//! * [`HashIndex`] — unique point-lookup index (primary keys),
//! * [`OrderedIndex`] — non-unique ordered index supporting range and
//!   prefix scans (e.g. the TPC-C customer last-name index).
//!
//! Indexes are sharded per partition by the owning [`crate::store::Table`],
//! so the locks here see contention only within one partition.

use anydb_common::fxmap::FxHashMap;
use anydb_common::{DbError, DbResult, Rid};
use parking_lot::RwLock;
use std::collections::BTreeMap;

use crate::key::IndexKey;

/// Declares a secondary index over a table.
#[derive(Debug, Clone)]
pub struct SecondaryIndexSpec {
    /// Name, for diagnostics (`cust_by_name`).
    pub name: String,
    /// Indexed column positions, in key order.
    pub columns: Vec<usize>,
    /// Whether to build an ordered (BTree) index instead of a hash index.
    pub ordered: bool,
}

impl SecondaryIndexSpec {
    /// Hash secondary index.
    pub fn hash(name: impl Into<String>, columns: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            columns,
            ordered: false,
        }
    }

    /// Ordered secondary index.
    pub fn ordered(name: impl Into<String>, columns: Vec<usize>) -> Self {
        Self {
            name: name.into(),
            columns,
            ordered: true,
        }
    }
}

/// A unique hash index.
#[derive(Default)]
pub struct HashIndex {
    map: RwLock<FxHashMap<IndexKey, Rid>>,
}

impl HashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a unique mapping; duplicate keys are rejected.
    pub fn insert(&self, key: IndexKey, rid: Rid) -> DbResult<()> {
        let mut map = self.map.write();
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => Err(DbError::DuplicateKey(rid.table)),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(rid);
                Ok(())
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &IndexKey) -> Option<Rid> {
        self.map.read().get(key).copied()
    }

    /// Removes a mapping (index maintenance on key-changing updates).
    pub fn remove(&self, key: &IndexKey) -> Option<Rid> {
        self.map.write().remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A non-unique hash index (point lookups only).
#[derive(Default)]
pub struct MultiHashIndex {
    map: RwLock<FxHashMap<IndexKey, Vec<Rid>>>,
}

impl MultiHashIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting.
    pub fn insert(&self, key: IndexKey, rid: Rid) {
        self.map.write().entry(key).or_default().push(rid);
    }

    /// Removes one posting for `key` pointing at `rid`.
    pub fn remove(&self, key: &IndexKey, rid: Rid) -> bool {
        let mut map = self.map.write();
        if let Some(postings) = map.get_mut(key) {
            if let Some(pos) = postings.iter().position(|r| *r == rid) {
                postings.swap_remove(pos);
                if postings.is_empty() {
                    map.remove(key);
                }
                return true;
            }
        }
        false
    }

    /// All RIDs for exactly `key`.
    pub fn get(&self, key: &IndexKey) -> Vec<Rid> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().len()
    }
}

/// A non-unique ordered index.
#[derive(Default)]
pub struct OrderedIndex {
    map: RwLock<BTreeMap<IndexKey, Vec<Rid>>>,
}

impl OrderedIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a posting.
    pub fn insert(&self, key: IndexKey, rid: Rid) {
        self.map.write().entry(key).or_default().push(rid);
    }

    /// Removes one posting for `key` pointing at `rid`.
    pub fn remove(&self, key: &IndexKey, rid: Rid) -> bool {
        let mut map = self.map.write();
        if let Some(postings) = map.get_mut(key) {
            if let Some(pos) = postings.iter().position(|r| *r == rid) {
                postings.swap_remove(pos);
                if postings.is_empty() {
                    map.remove(key);
                }
                return true;
            }
        }
        false
    }

    /// All RIDs for exactly `key`.
    pub fn get(&self, key: &IndexKey) -> Vec<Rid> {
        self.map.read().get(key).cloned().unwrap_or_default()
    }

    /// All RIDs in `[lo, hi]`, in key order.
    pub fn range(&self, lo: &IndexKey, hi: &IndexKey) -> Vec<Rid> {
        self.map
            .read()
            .range(lo.clone()..=hi.clone())
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{int_key, int_keys};
    use anydb_common::{PartitionId, TableId};

    fn rid(slot: u32) -> Rid {
        Rid::new(TableId(1), PartitionId(0), slot)
    }

    #[test]
    fn hash_index_unique() {
        let idx = HashIndex::new();
        idx.insert(int_key(1), rid(0)).unwrap();
        assert_eq!(idx.get(&int_key(1)), Some(rid(0)));
        assert_eq!(
            idx.insert(int_key(1), rid(1)),
            Err(DbError::DuplicateKey(TableId(1)))
        );
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(&int_key(1)), Some(rid(0)));
        assert!(idx.get(&int_key(1)).is_none());
    }

    #[test]
    fn hash_index_composite_keys() {
        let idx = HashIndex::new();
        idx.insert(int_keys(&[1, 2]), rid(0)).unwrap();
        idx.insert(int_keys(&[1, 3]), rid(1)).unwrap();
        assert_eq!(idx.get(&int_keys(&[1, 3])), Some(rid(1)));
        assert_eq!(idx.get(&int_keys(&[1, 4])), None);
    }

    #[test]
    fn ordered_index_postings() {
        let idx = OrderedIndex::new();
        idx.insert(int_key(5), rid(0));
        idx.insert(int_key(5), rid(1));
        idx.insert(int_key(7), rid(2));
        let mut got = idx.get(&int_key(5));
        got.sort();
        assert_eq!(got, vec![rid(0), rid(1)]);
        assert_eq!(idx.key_count(), 2);
    }

    #[test]
    fn ordered_index_range() {
        let idx = OrderedIndex::new();
        for i in 0..10 {
            idx.insert(int_key(i), rid(i as u32));
        }
        let got = idx.range(&int_key(3), &int_key(6));
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], rid(3));
        assert_eq!(got[3], rid(6));
    }

    #[test]
    fn ordered_index_remove() {
        let idx = OrderedIndex::new();
        idx.insert(int_key(1), rid(0));
        idx.insert(int_key(1), rid(1));
        assert!(idx.remove(&int_key(1), rid(0)));
        assert!(!idx.remove(&int_key(1), rid(0)));
        assert_eq!(idx.get(&int_key(1)), vec![rid(1)]);
        assert!(idx.remove(&int_key(1), rid(1)));
        assert_eq!(idx.key_count(), 0);
    }

    #[test]
    fn spec_constructors() {
        let h = SecondaryIndexSpec::hash("h", vec![1]);
        assert!(!h.ordered);
        let o = SecondaryIndexSpec::ordered("o", vec![1, 2]);
        assert!(o.ordered);
        assert_eq!(o.columns, vec![1, 2]);
    }
}
