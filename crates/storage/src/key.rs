//! Index key values.
//!
//! Index keys exclude floats (no total equality) and NULLs (not
//! indexable), which keeps `Eq + Ord + Hash` honest. Converting a
//! [`Value`] into a [`KeyValue`] fails loudly on either.

use std::sync::Arc;

use anydb_common::{DbError, DbResult, Value};

/// A single indexable value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KeyValue {
    /// Integer key component.
    Int(i64),
    /// String key component.
    Str(Arc<str>),
}

impl TryFrom<&Value> for KeyValue {
    type Error = DbError;

    fn try_from(v: &Value) -> DbResult<Self> {
        match v {
            Value::Int(i) => Ok(KeyValue::Int(*i)),
            Value::Str(s) => Ok(KeyValue::Str(s.clone())),
            Value::Float(_) => Err(DbError::TypeMismatch("float not indexable")),
            Value::Null => Err(DbError::TypeMismatch("null not indexable")),
        }
    }
}

impl From<i64> for KeyValue {
    fn from(v: i64) -> Self {
        KeyValue::Int(v)
    }
}

impl From<&str> for KeyValue {
    fn from(v: &str) -> Self {
        KeyValue::Str(Arc::from(v))
    }
}

/// A (possibly composite) index key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexKey(Vec<KeyValue>);

impl IndexKey {
    /// Builds a key from components.
    pub fn new(parts: Vec<KeyValue>) -> Self {
        Self(parts)
    }

    /// Extracts the key for `columns` out of a tuple's values.
    pub fn from_values(values: &[Value], columns: &[usize]) -> DbResult<Self> {
        let mut parts = Vec::with_capacity(columns.len());
        for &c in columns {
            parts.push(KeyValue::try_from(
                values
                    .get(c)
                    .ok_or(DbError::SchemaMismatch("key column out of range"))?,
            )?);
        }
        Ok(Self(parts))
    }

    /// The key components.
    pub fn parts(&self) -> &[KeyValue] {
        &self.0
    }

    /// First component as an integer, if it is one. Used by hash
    /// partitioners keyed on a leading integer column (warehouse ids).
    pub fn leading_int(&self) -> Option<i64> {
        match self.0.first() {
            Some(KeyValue::Int(i)) => Some(*i),
            _ => None,
        }
    }
}

/// Shorthand for a single-column integer key.
pub fn int_key(v: i64) -> IndexKey {
    IndexKey::new(vec![KeyValue::Int(v)])
}

/// Shorthand for composite integer keys.
pub fn int_keys(vs: &[i64]) -> IndexKey {
    IndexKey::new(vs.iter().map(|&v| KeyValue::Int(v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversion() {
        assert_eq!(
            KeyValue::try_from(&Value::Int(5)).unwrap(),
            KeyValue::Int(5)
        );
        assert_eq!(
            KeyValue::try_from(&Value::str("a")).unwrap(),
            KeyValue::from("a")
        );
        assert!(KeyValue::try_from(&Value::Float(1.0)).is_err());
        assert!(KeyValue::try_from(&Value::Null).is_err());
    }

    #[test]
    fn from_values_extracts_columns() {
        let values = vec![Value::Int(1), Value::str("x"), Value::Int(3)];
        let k = IndexKey::from_values(&values, &[2, 0]).unwrap();
        assert_eq!(k, int_keys(&[3, 1]));
    }

    #[test]
    fn from_values_rejects_out_of_range() {
        assert!(IndexKey::from_values(&[Value::Int(1)], &[4]).is_err());
    }

    #[test]
    fn leading_int() {
        assert_eq!(int_keys(&[7, 8]).leading_int(), Some(7));
        assert_eq!(IndexKey::new(vec![KeyValue::from("a")]).leading_int(), None);
    }

    #[test]
    fn keys_order_lexicographically() {
        assert!(int_keys(&[1, 2]) < int_keys(&[1, 3]));
        assert!(int_keys(&[1, 2]) < int_keys(&[2]));
    }
}
