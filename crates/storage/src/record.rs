//! Versioned rows.

use anydb_common::Tuple;

/// A stored row: the tuple plus a version counter bumped on every update.
///
/// Versions serve three purposes: OCC validation (`anydb-txn::occ`),
/// serializability checking in tests, and cheap change detection for
/// secondary-index maintenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    tuple: Tuple,
    version: u64,
}

impl Row {
    /// A fresh row at version 0.
    pub fn new(tuple: Tuple) -> Self {
        Self { tuple, version: 0 }
    }

    /// The current tuple.
    #[inline]
    pub fn tuple(&self) -> &Tuple {
        &self.tuple
    }

    /// The current version.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Applies a mutation, bumping the version. Returns the new version.
    pub fn update(&mut self, f: impl FnOnce(&mut Tuple)) -> u64 {
        f(&mut self.tuple);
        self.version += 1;
        self.version
    }

    /// Replaces the tuple wholesale (recovery replay), bumping the version.
    pub fn replace(&mut self, tuple: Tuple) -> u64 {
        self.tuple = tuple;
        self.version += 1;
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    #[test]
    fn update_bumps_version() {
        let mut r = Row::new(Tuple::new(vec![Value::Int(1)]));
        assert_eq!(r.version(), 0);
        let v = r.update(|t| {
            t.set(0, Value::Int(2));
        });
        assert_eq!(v, 1);
        assert_eq!(r.tuple().get(0), &Value::Int(2));
    }

    #[test]
    fn replace_bumps_version() {
        let mut r = Row::new(Tuple::new(vec![Value::Int(1)]));
        r.replace(Tuple::new(vec![Value::Int(9)]));
        assert_eq!(r.version(), 1);
        assert_eq!(r.tuple().get(0), &Value::Int(9));
    }
}
