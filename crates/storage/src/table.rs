//! Partitioned tables with automatic index maintenance, and the
//! epoch-validated **shared scan cache** (SharedDB-style): repeated
//! analytic queries over a quiescent partition ride one materialized
//! columnar snapshot instead of each paying its own scan pass — served
//! zero-copy because column buffers are `Arc`-shared.

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::fxmap::FxHashMap;
use anydb_common::{
    bitmap_ones, ColPredicate, ColumnBatch, DbError, DbResult, PartitionId, Rid, ScanReply,
    ScanRequest, Schema, TableId, Tuple, Value,
};
use parking_lot::Mutex;

use crate::index::{HashIndex, MultiHashIndex, OrderedIndex, SecondaryIndexSpec};
use crate::key::IndexKey;
use crate::partition::{Partition, ScanSnapshot};
use crate::store::Partitioner;

/// One secondary index, sharded per partition.
enum AnyIndex {
    Hash(Vec<MultiHashIndex>),
    Ordered(Vec<OrderedIndex>),
}

struct Secondary {
    spec: SecondaryIndexSpec,
    index: AnyIndex,
}

/// What identifies one cached shared scan: the partition plus the exact
/// projection and pushdown predicate.
type SharedScanKey = (usize, Vec<usize>, Option<ColPredicate>);

/// Blunt size bound on the shared-scan cache, in entries *per
/// partition*: one cached entry exists per `(partition, proj, pred)`
/// key, so a standing analytic query contributes one entry to every
/// partition it scans (HTAP Q3 holds one shape on each of its three
/// tables). Past `shapes × partitions` entries the whole cache is
/// dropped rather than managing an eviction order.
const SCAN_CACHE_SHAPES_PER_PARTITION: usize = 8;

/// Monotonic outcome counters of
/// [`Table::scan_columns_snapshot_shared`], read via
/// [`Table::shared_scan_stats`]. `miss_rows` is the number of rows
/// *materialized* by cache-miss scans — the deterministic cost model the
/// shared-execution ablation gates on (wall clock on a noisy 1-core CI
/// host is not reproducible; rows copied out of the mirror are).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedScanStats {
    /// Exact-key cache hits served zero-copy.
    pub hits: u64,
    /// Requests served by refining a cached **superset** entry (same
    /// partition and projection, covering predicate).
    pub superset_hits: u64,
    /// Fresh scans (no serveable entry).
    pub misses: u64,
    /// Rows materialized by those fresh scans.
    pub miss_rows: u64,
}

/// Atomic cells behind [`SharedScanStats`] (relaxed: the counters are
/// diagnostics and cost accounting, not synchronization).
#[derive(Default)]
struct SharedScanCounters {
    hits: AtomicU64,
    superset_hits: AtomicU64,
    misses: AtomicU64,
    miss_rows: AtomicU64,
}

/// `true` iff a cached entry's predicate (`sup`) provably matches a
/// superset of the rows `req` matches. `None` is the unfiltered scan,
/// which covers everything; a filtered entry never covers an unfiltered
/// request.
fn covers_opt(sup: Option<&ColPredicate>, req: Option<&ColPredicate>) -> bool {
    match (sup, req) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(s), Some(r)) => s.covers(r),
    }
}

/// A partitioned table: row storage, a per-partition unique primary-key
/// index, and any number of secondary indexes.
///
/// Index shards align with storage partitions, so single-partition
/// transactions (the common TPC-C case) never touch another partition's
/// locks — this is what makes the shared-nothing configuration genuinely
/// contention-free in Figures 1 and 5.
pub struct Table {
    id: TableId,
    schema: Schema,
    partitioner: Partitioner,
    partitions: Vec<Partition>,
    pk_index: Vec<HashIndex>,
    secondaries: Vec<Secondary>,
    by_name: FxHashMap<String, usize>,
    /// Cached shared scans, revalidated against the **column-level**
    /// write epochs of each entry's projection ∪ filter set (see
    /// [`Table::scan_columns_snapshot_shared`]). Only point-in-time
    /// certificates are ever stored.
    scan_cache: Mutex<FxHashMap<SharedScanKey, (ScanSnapshot, ColumnBatch)>>,
    /// Outcome counters of the shared-scan path.
    scan_counters: SharedScanCounters,
}

impl Table {
    /// Creates a table with `partition_count` partitions.
    pub fn new(
        id: TableId,
        schema: Schema,
        partitioner: Partitioner,
        partition_count: u32,
        secondary_specs: Vec<SecondaryIndexSpec>,
    ) -> Self {
        assert!(partition_count > 0, "need at least one partition");
        let n = partition_count as usize;
        let types: Vec<_> = schema.columns().iter().map(|c| c.ty).collect();
        let mut by_name = FxHashMap::default();
        let secondaries = secondary_specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| {
                by_name.insert(spec.name.clone(), i);
                let index = if spec.ordered {
                    AnyIndex::Ordered((0..n).map(|_| OrderedIndex::new()).collect())
                } else {
                    AnyIndex::Hash((0..n).map(|_| MultiHashIndex::new()).collect())
                };
                Secondary { spec, index }
            })
            .collect();
        Self {
            id,
            schema,
            partitioner,
            partitions: (0..n).map(|_| Partition::with_types(&types)).collect(),
            pk_index: (0..n).map(|_| HashIndex::new()).collect(),
            secondaries,
            by_name,
            scan_cache: Mutex::new(FxHashMap::default()),
            scan_counters: SharedScanCounters::default(),
        }
    }

    /// Table id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Access to one partition (scans executed by storage ACs).
    pub fn partition(&self, p: PartitionId) -> DbResult<&Partition> {
        self.partitions
            .get(p.index())
            .ok_or(DbError::UnknownPartition(self.id, p))
    }

    /// Which partition a tuple belongs in.
    pub fn partition_of(&self, values: &[Value]) -> DbResult<PartitionId> {
        self.partitioner
            .partition_of(values, self.partitions.len() as u32)
    }

    /// Inserts a tuple (schema-checked), maintaining all indexes.
    /// Returns the new RID.
    pub fn insert(&self, tuple: Tuple) -> DbResult<Rid> {
        self.schema.check(tuple.values())?;
        let p = self.partition_of(tuple.values())?;
        let pk = IndexKey::from_values(tuple.values(), self.schema.primary_key())?;
        // Reserve the pk slot *before* the row is published: the index
        // insert runs inside `append_with`'s critical section with the
        // slot the row would occupy, so a `DuplicateKey` rejection leaves
        // nothing behind — no ghost row visible to `row_count()` or
        // scans, no column-mirror write, no epoch bump to invalidate
        // cached shared scans. Concurrent identical keys serialize on the
        // partition's append lock, and the index stays the authoritative
        // duplicate check.
        let pi = p.index();
        let slot = self.partitions[pi].append_with(tuple.clone(), |slot| {
            self.pk_index[pi].insert(pk, Rid::new(self.id, p, slot))
        })?;
        let rid = Rid::new(self.id, p, slot);
        for sec in &self.secondaries {
            let key = IndexKey::from_values(tuple.values(), &sec.spec.columns)?;
            match &sec.index {
                AnyIndex::Hash(shards) => shards[p.index()].insert(key, rid),
                AnyIndex::Ordered(shards) => shards[p.index()].insert(key, rid),
            }
        }
        Ok(rid)
    }

    /// Primary-key lookup.
    pub fn get_rid(&self, pk: &IndexKey) -> DbResult<Rid> {
        let p = self
            .partitioner
            .partition_of_key(pk, self.partitions.len() as u32)?;
        self.pk_index[p.index()]
            .get(pk)
            .ok_or(DbError::KeyNotFound(self.id))
    }

    /// Reads the tuple (clone) and version at `rid`.
    pub fn read(&self, rid: Rid) -> DbResult<(Tuple, u64)> {
        self.check_rid(rid)?;
        self.partitions[rid.partition.index()]
            .read_tuple(rid.slot)
            .map_err(|_| DbError::RecordNotFound(rid))
    }

    /// Reads under the row latch without cloning.
    pub fn read_with<R>(&self, rid: Rid, f: impl FnOnce(&Tuple, u64) -> R) -> DbResult<R> {
        self.check_rid(rid)?;
        self.partitions[rid.partition.index()]
            .read(rid.slot, |row| f(row.tuple(), row.version()))
            .map_err(|_| DbError::RecordNotFound(rid))
    }

    /// Updates the row at `rid` in place, maintaining secondary indexes if
    /// the mutation changes indexed columns. Returns the new version.
    pub fn update<R>(&self, rid: Rid, f: impl FnOnce(&mut Tuple) -> R) -> DbResult<(R, u64)> {
        self.check_rid(rid)?;
        let secondaries = &self.secondaries;
        let p = rid.partition.index();
        self.partitions[p]
            .update(rid.slot, |tuple| {
                let old_keys: Vec<IndexKey> = secondaries
                    .iter()
                    .map(|s| IndexKey::from_values(tuple.values(), &s.spec.columns))
                    .collect::<DbResult<_>>()
                    .expect("existing row has valid index keys");
                let out = f(tuple);
                for (sec, old_key) in secondaries.iter().zip(old_keys) {
                    let new_key = IndexKey::from_values(tuple.values(), &sec.spec.columns)
                        .expect("updated row must keep indexable key columns");
                    if new_key != old_key {
                        match &sec.index {
                            AnyIndex::Hash(shards) => {
                                shards[p].remove(&old_key, rid);
                                shards[p].insert(new_key, rid);
                            }
                            AnyIndex::Ordered(shards) => {
                                shards[p].remove(&old_key, rid);
                                shards[p].insert(new_key, rid);
                            }
                        }
                    }
                }
                out
            })
            .map_err(|_| DbError::RecordNotFound(rid))
    }

    /// Secondary-index point lookup within one partition.
    pub fn lookup_secondary(
        &self,
        name: &str,
        p: PartitionId,
        key: &IndexKey,
    ) -> DbResult<Vec<Rid>> {
        let sec = self.secondary(name)?;
        self.check_partition(p)?;
        Ok(match &sec.index {
            AnyIndex::Hash(shards) => shards[p.index()].get(key),
            AnyIndex::Ordered(shards) => shards[p.index()].get(key),
        })
    }

    /// Secondary-index range scan (ordered indexes only).
    pub fn range_secondary(
        &self,
        name: &str,
        p: PartitionId,
        lo: &IndexKey,
        hi: &IndexKey,
    ) -> DbResult<Vec<Rid>> {
        let sec = self.secondary(name)?;
        self.check_partition(p)?;
        match &sec.index {
            AnyIndex::Ordered(shards) => Ok(shards[p.index()].range(lo, hi)),
            AnyIndex::Hash(_) => Err(DbError::Config(format!(
                "secondary index '{name}' is not ordered"
            ))),
        }
    }

    /// An empty [`ColumnBatch`] typed for a projection of this table's
    /// schema — the receptacle for [`Table::scan_columns`].
    ///
    /// # Panics
    /// Panics if a projection index is out of range (a plan bug; column
    /// positions come from the checked schema).
    pub fn column_batch(&self, proj: &[usize]) -> ColumnBatch {
        ColumnBatch::for_projection(&self.schema, proj)
    }

    /// Columnar scan of one partition with projection and filter pushdown
    /// (see [`crate::partition::Partition::scan_columns`]): rows passing
    /// `pred` land directly in `out`'s column vectors, projected to
    /// `proj`. Returns rows scanned pre-filter.
    pub fn scan_columns(
        &self,
        p: PartitionId,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<usize> {
        self.partition(p)?.scan_columns(proj, pred, out)
    }

    /// Snapshot-consistent columnar scan of one partition (see
    /// [`crate::partition::Partition::scan_columns_snapshot`]): a fixed
    /// prefix materialized in one latch-free pass while OLTP writes race,
    /// with a [`ScanSnapshot`] certificate reporting whether the result
    /// is a single point-in-time image.
    pub fn scan_columns_snapshot(
        &self,
        p: PartitionId,
        proj: &[usize],
        pred: Option<&ColPredicate>,
        out: &mut ColumnBatch,
    ) -> DbResult<ScanSnapshot> {
        self.partition(p)?.scan_columns_snapshot(proj, pred, out)
    }

    /// Epoch-validated **shared** snapshot scan: the SharedDB move of
    /// letting every query ride one consistent scan.
    ///
    /// The first caller for a given `(partition, proj, pred)` shape pays
    /// one [`Table::scan_columns_snapshot`] pass and the result is
    /// cached *together with its certificate*. Later callers revalidate
    /// in O(columns): if the cached image was point-in-time **for its
    /// column set** and no later write changed a projected or filtered
    /// column (or appended a row) — the column-level epochs of
    /// [`crate::partition::Partition::cols_epoch`] — the cached columns
    /// are provably identical to what a fresh scan would materialize, and
    /// are returned as zero-copy views (`Arc` buffer clones, O(columns)).
    /// OLTP writes to columns *outside* the projection ∪ filter set
    /// therefore leave cached OLAP snapshots alive (the HTAP separation:
    /// payments rewriting balances never invalidate a key-column scan);
    /// any write inside the set forces a fresh scan, so a stale image can
    /// never be served, and write-heavy phases degrade gracefully to
    /// exactly the uncached cost.
    ///
    /// Only point-in-time certificates are inserted: a read-committed
    /// result from a raced scan can never be served by the hit path, so
    /// caching it would only displace serveable entries and push the
    /// cache toward its blunt clear-all bound.
    ///
    /// **Superset serving.** An exact key miss does not yet mean a scan:
    /// a valid entry with the same `(partition, proj)` whose predicate
    /// [`ColPredicate::covers`] the request holds every row the request
    /// would materialize (the entry's certificate validates the whole
    /// projection, and the request's filter columns all sit inside
    /// `proj` — checked via [`ColPredicate::project_columns`], which
    /// also re-addresses the predicate to the cached batch's column
    /// order). The request is then answered by *refining* the cached
    /// batch with a vectorized bitmap select — O(cached rows) instead of
    /// O(partition rows + full materialization). This is what makes N
    /// concurrent queries with near-miss date windows share one scan.
    /// Refined results are not re-inserted: they would be dominated by
    /// the entry that served them.
    ///
    /// **Dominated-entry eviction.** Inserting a fresh entry first evicts
    /// same-`(partition, proj)` entries whose predicate the new entry
    /// covers: any future request they could serve exactly, the new
    /// entry now serves by refinement, so they are dead weight — and
    /// without this, a widening stream of hull predicates (the shared
    /// pipeline's signature) would grow one entry per hull until the
    /// blunt clear-all fired.
    ///
    /// The cache mutex is held only for the O(columns) revalidation and
    /// the insert — never across materialization or refinement — so one
    /// query's cold scan cannot stall another query's cache hit. Two
    /// queries that miss on the same key concurrently both scan and the
    /// later insert wins; each result carries its own valid certificate.
    ///
    /// Callers may freely mutate the returned batch: copy-on-write on
    /// the shared buffers protects the cached image.
    pub fn scan_columns_snapshot_shared(
        &self,
        p: PartitionId,
        proj: &[usize],
        pred: Option<&ColPredicate>,
    ) -> DbResult<(ColumnBatch, ScanSnapshot)> {
        let part = self.partition(p)?;
        let key: SharedScanKey = (p.index(), proj.to_vec(), pred.cloned());
        let mut superset: Option<(ScanSnapshot, ColumnBatch, ColPredicate)> = None;
        {
            let cache = self.scan_cache.lock();
            if let Some((snap, batch)) = cache.get(&key) {
                if snap.is_cols_point_in_time()
                    && snap.cols_epoch_end == part.cols_epoch(proj, pred)
                {
                    let served = (batch.clone(), *snap);
                    drop(cache);
                    self.scan_counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(served);
                }
            }
            if let Some(local) = pred.and_then(|req| req.project_columns(proj)) {
                let req = pred.expect("local projection implies a predicate");
                for ((part_idx, eproj, epred), (esnap, ebatch)) in cache.iter() {
                    if *part_idx != p.index() || eproj != proj {
                        continue;
                    }
                    if !covers_opt(epred.as_ref(), Some(req)) {
                        continue;
                    }
                    if esnap.is_cols_point_in_time()
                        && esnap.cols_epoch_end == part.cols_epoch(proj, epred.as_ref())
                    {
                        // O(columns) clone under the lock; refine after.
                        superset = Some((*esnap, ebatch.clone(), local));
                        break;
                    }
                }
            }
        }
        if let Some((esnap, ebatch, local)) = superset {
            let mut bits = Vec::new();
            local.select_bitmap(&ebatch, &mut bits);
            let mut sel = Vec::new();
            bitmap_ones(&bits, &mut sel);
            let refined = ebatch.take(&sel);
            // The entry's certificate transfers: it validates the whole
            // projection (a superset of what the request reads), and the
            // refined rows are exactly what a direct scan of the same
            // prefix would have matched.
            let mut snap = esnap;
            snap.matched = refined.rows();
            self.scan_counters
                .superset_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok((refined, snap));
        }
        let mut batch = self.column_batch(proj);
        let snap = part.scan_columns_snapshot(proj, pred, &mut batch)?;
        self.scan_counters.misses.fetch_add(1, Ordering::Relaxed);
        self.scan_counters
            .miss_rows
            .fetch_add(batch.rows() as u64, Ordering::Relaxed);
        if snap.is_cols_point_in_time() {
            let mut cache = self.scan_cache.lock();
            // Evict entries the new one dominates (same partition and
            // projection, predicate covered by the new predicate).
            cache.retain(|(part_idx, eproj, epred), _| {
                !(*part_idx == key.0
                    && *eproj == key.1
                    && *epred != key.2
                    && covers_opt(key.2.as_ref(), epred.as_ref()))
            });
            // The cap bounds standing *shapes* per partition: the key
            // space is per-(partition, proj, pred), so a whole-table scan
            // inserts one entry per partition and must not count against
            // other partitions.
            if cache.len() >= SCAN_CACHE_SHAPES_PER_PARTITION * self.partitions.len()
                && !cache.contains_key(&key)
            {
                cache.clear();
            }
            cache.insert(key, (snap, batch.clone()));
        }
        Ok((batch, snap))
    }

    /// Serves a decoded [`ScanRequest`] — the storage-AC side of the
    /// remote scan protocol (DESIGN.md §8).
    ///
    /// Runs the requested pushdown scan over one partition (or all of
    /// them), splits each partition's surviving rows into zero-copy
    /// reply batches of at most `batch_rows` rows (`0` = unsplit), and
    /// returns the replies in `(partition, batch)` order, every one
    /// carrying its partition's [`ScanSnapshot`] certificate. The second
    /// return value is the total rows scanned pre-filter (the producer
    /// accounting the beaming pipeline reports).
    ///
    /// `shared` requests ride the shared-scan cache like local callers
    /// ([`Table::scan_columns_snapshot_shared`]); private requests pay a
    /// fresh snapshot scan. Either way the mirror and cache semantics are
    /// exactly the local ones — the wire changes *where* the scan runs,
    /// not what it observes.
    ///
    /// Requests arrive off a wire, so plan-shape invariants that local
    /// callers get to assume are validated here: a projection index past
    /// the schema is an error, never a panic. (Predicate columns outside
    /// the schema are fine by construction — predicates treat them as
    /// "no match".) An empty partition produces one reply with an empty
    /// batch, so every partition's certificate always reaches the
    /// requester.
    pub fn serve_scan(&self, req: &ScanRequest) -> DbResult<(Vec<ScanReply>, usize)> {
        let arity = self.schema.columns().len();
        if req.proj.iter().any(|&c| c >= arity) {
            return Err(DbError::Codec("scan request projection out of range"));
        }
        let parts: Vec<PartitionId> = match req.partition {
            Some(p) => {
                self.check_partition(p)?;
                vec![p]
            }
            None => (0..self.partition_count()).map(PartitionId).collect(),
        };
        let mut replies = Vec::new();
        let mut scanned = 0usize;
        for p in parts {
            let (batch, snapshot) = if req.shared {
                self.scan_columns_snapshot_shared(p, &req.proj, req.pred.as_ref())?
            } else {
                let mut out = self.column_batch(&req.proj);
                let snap = self.scan_columns_snapshot(p, &req.proj, req.pred.as_ref(), &mut out)?;
                (out, snap)
            };
            scanned += snapshot.prefix;
            if req.batch_rows == 0 || batch.rows() <= req.batch_rows {
                replies.push(ScanReply {
                    partition: p,
                    snapshot,
                    batch,
                });
            } else {
                replies.extend(batch.split(req.batch_rows).into_iter().map(|b| ScanReply {
                    partition: p,
                    snapshot,
                    batch: b,
                }));
            }
        }
        Ok((replies, scanned))
    }

    /// Snapshot of the shared-scan outcome counters (monotonic since
    /// table creation; subtract two snapshots to meter a window).
    pub fn shared_scan_stats(&self) -> SharedScanStats {
        SharedScanStats {
            hits: self.scan_counters.hits.load(Ordering::Relaxed),
            superset_hits: self.scan_counters.superset_hits.load(Ordering::Relaxed),
            misses: self.scan_counters.misses.load(Ordering::Relaxed),
            miss_rows: self.scan_counters.miss_rows.load(Ordering::Relaxed),
        }
    }

    /// Number of cached shared-scan entries (diagnostic: the cache must
    /// hold only point-in-time certificates, so racing writers never
    /// inflate it with dead entries).
    pub fn scan_cache_len(&self) -> usize {
        self.scan_cache.lock().len()
    }

    /// Total rows across partitions.
    pub fn row_count(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// Rows in one partition.
    pub fn partition_row_count(&self, p: PartitionId) -> DbResult<usize> {
        Ok(self.partition(p)?.len())
    }

    fn secondary(&self, name: &str) -> DbResult<&Secondary> {
        self.by_name
            .get(name)
            .map(|&i| &self.secondaries[i])
            .ok_or_else(|| DbError::Config(format!("no secondary index '{name}'")))
    }

    fn check_partition(&self, p: PartitionId) -> DbResult<()> {
        if p.index() < self.partitions.len() {
            Ok(())
        } else {
            Err(DbError::UnknownPartition(self.id, p))
        }
    }

    fn check_rid(&self, rid: Rid) -> DbResult<()> {
        if rid.table != self.id {
            return Err(DbError::RecordNotFound(rid));
        }
        self.check_partition(rid.partition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{int_key, int_keys};
    use anydb_common::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(
            "acct",
            vec![
                ColumnDef::new("w_id", DataType::Int),
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("balance", DataType::Float),
            ],
            &["w_id", "id"],
        )
    }

    fn table() -> Table {
        Table::new(
            TableId(1),
            schema(),
            Partitioner::by_column(0, 1),
            4,
            vec![SecondaryIndexSpec::ordered("by_name", vec![0, 2])],
        )
    }

    fn row(w: i64, id: i64, name: &str, bal: f64) -> Tuple {
        Tuple::new(vec![
            Value::Int(w),
            Value::Int(id),
            Value::str(name),
            Value::Float(bal),
        ])
    }

    #[test]
    fn insert_and_pk_lookup() {
        let t = table();
        let rid = t.insert(row(1, 10, "alice", 5.0)).unwrap();
        assert_eq!(rid.partition, PartitionId(0));
        assert_eq!(t.get_rid(&int_keys(&[1, 10])).unwrap(), rid);
        let (tuple, v) = t.read(rid).unwrap();
        assert_eq!(tuple.get(2), &Value::str("alice"));
        assert_eq!(v, 0);
    }

    #[test]
    fn insert_routes_to_partition() {
        let t = table();
        let r1 = t.insert(row(1, 1, "a", 0.0)).unwrap();
        let r3 = t.insert(row(3, 1, "c", 0.0)).unwrap();
        assert_eq!(r1.partition, PartitionId(0));
        assert_eq!(r3.partition, PartitionId(2));
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.partition_row_count(PartitionId(2)).unwrap(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let t = table();
        t.insert(row(1, 10, "a", 0.0)).unwrap();
        assert_eq!(
            t.insert(row(1, 10, "b", 0.0)),
            Err(DbError::DuplicateKey(TableId(1)))
        );
    }

    #[test]
    fn duplicate_insert_leaves_no_ghost_row() {
        // Regression: the pk slot is reserved before the row is appended,
        // so a rejected duplicate must leave no trace anywhere — not in
        // row_count, not in row scans, not in the column mirror, and not
        // in the write epoch (a ghost used to appear in all of them).
        let t = table();
        t.insert(row(1, 10, "alice", 5.0)).unwrap();
        let p = PartitionId(0);
        let epoch_before = t.partition(p).unwrap().epoch();
        let (cached, snap) = t.scan_columns_snapshot_shared(p, &[3], None).unwrap();
        assert_eq!(
            t.insert(row(1, 10, "ghost", 99.0)),
            Err(DbError::DuplicateKey(TableId(1)))
        );
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.partition_row_count(p).unwrap(), 1);
        // Row-store scan contents unchanged.
        let rows = t.partition(p).unwrap().collect_matching(|_| true);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(2), &Value::str("alice"));
        // Column-mirror scan agrees (no half-written mirror row).
        let mut out = t.column_batch(&[2, 3]);
        t.scan_columns(p, &[2, 3], None, &mut out).unwrap();
        assert_eq!(out.rows(), 1);
        assert_eq!(out.column(0).str_at(0), Some("alice"));
        assert_eq!(out.column(1).floats().unwrap(), &[5.0]);
        // The rejected insert bumped no epoch: the cached shared scan is
        // still served zero-copy.
        assert_eq!(t.partition(p).unwrap().epoch(), epoch_before);
        let (hit, snap2) = t.scan_columns_snapshot_shared(p, &[3], None).unwrap();
        assert_eq!(snap, snap2);
        assert!(hit.column(0).shares_buffer_with(cached.column(0)));
        // And the slot freed by the rejection is reused by the next row.
        let rid = t.insert(row(1, 11, "bob", 1.0)).unwrap();
        assert_eq!(rid.slot, 1);
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn shared_scan_survives_writes_to_disjoint_columns() {
        // The column-level-epoch contract: an OLTP write to a column
        // outside the cached projection ∪ filter set must not invalidate
        // the cached shared scan — same certificate, same buffers.
        let t = table();
        let rid = t.insert(row(1, 10, "alice", 5.0)).unwrap();
        t.insert(row(1, 11, "bob", 7.0)).unwrap();
        let p = PartitionId(0);
        // Shape: project (balance, id), filter id >= 10 → S = {1, 3}.
        let pred = ColPredicate::IntGe { col: 1, min: 10 };
        let proj = [3usize, 1];
        let (b1, s1) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        // Write to column 2 (name): outside S, epoch moves globally but
        // not for this column set.
        t.update(rid, |tu| tu.set(2, Value::str("renamed")))
            .unwrap();
        assert!(t.partition(p).unwrap().epoch() > s1.epoch_end);
        let (b2, s2) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        assert_eq!(s1, s2, "certificate unchanged — cache hit");
        assert!(
            b2.column(0).shares_buffer_with(b1.column(0)),
            "served zero-copy from the cache"
        );
        // A write *inside* S (the filter column) invalidates.
        t.update(rid, |tu| tu.set(1, Value::Int(12))).unwrap();
        let (b3, s3) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        assert!(s3.cols_epoch_end > s2.cols_epoch_end);
        assert!(!b3.column(0).shares_buffer_with(b1.column(0)));
        assert_eq!(b3.column(1).ints().unwrap(), &[12, 11]);
        // So does a write to a projected column.
        t.update(rid, |tu| tu.set(3, Value::Float(6.0))).unwrap();
        let (b4, _) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        assert!(!b4.column(0).shares_buffer_with(b3.column(0)));
        assert_eq!(b4.column(0).floats().unwrap(), &[6.0, 7.0]);
        // And an append always invalidates (the prefix grew), even though
        // it "writes" every column equally.
        t.insert(row(1, 13, "carol", 1.0)).unwrap();
        let (b5, s5) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        assert_eq!(s5.prefix, 3);
        assert_eq!(b5.rows(), 3);
    }

    #[test]
    fn schema_violation_rejected() {
        let t = table();
        assert!(t
            .insert(Tuple::new(vec![Value::Int(1), Value::Int(2)]))
            .is_err());
    }

    #[test]
    fn update_bumps_version() {
        let t = table();
        let rid = t.insert(row(1, 10, "a", 1.0)).unwrap();
        let ((), v) = t
            .update(rid, |tu| {
                tu.set(3, Value::Float(2.0));
            })
            .unwrap();
        assert_eq!(v, 1);
        assert_eq!(t.read(rid).unwrap().0.get(3), &Value::Float(2.0));
    }

    #[test]
    fn secondary_lookup_and_maintenance() {
        let t = table();
        let rid = t.insert(row(1, 10, "smith", 0.0)).unwrap();
        t.insert(row(1, 11, "smith", 0.0)).unwrap();
        let key = IndexKey::new(vec![1i64.into(), "smith".into()]);
        assert_eq!(
            t.lookup_secondary("by_name", PartitionId(0), &key)
                .unwrap()
                .len(),
            2
        );
        // Rename one: the index must follow.
        t.update(rid, |tu| {
            tu.set(2, Value::str("jones"));
        })
        .unwrap();
        assert_eq!(
            t.lookup_secondary("by_name", PartitionId(0), &key)
                .unwrap()
                .len(),
            1
        );
        let jones = IndexKey::new(vec![1i64.into(), "jones".into()]);
        assert_eq!(
            t.lookup_secondary("by_name", PartitionId(0), &jones)
                .unwrap(),
            vec![rid]
        );
    }

    #[test]
    fn range_secondary_scans_in_order() {
        let t = table();
        for (id, name) in [(1, "adams"), (2, "baker"), (3, "clark")] {
            t.insert(row(1, id, name, 0.0)).unwrap();
        }
        let lo = IndexKey::new(vec![1i64.into(), "a".into()]);
        let hi = IndexKey::new(vec![1i64.into(), "bz".into()]);
        let rids = t
            .range_secondary("by_name", PartitionId(0), &lo, &hi)
            .unwrap();
        assert_eq!(rids.len(), 2);
    }

    #[test]
    fn scan_columns_matches_row_scan() {
        let t = table();
        for w in 1..=4i64 {
            for id in 1..=5i64 {
                t.insert(row(
                    w,
                    id,
                    if id % 2 == 0 { "Anna" } else { "bob" },
                    id as f64,
                ))
                .unwrap();
            }
        }
        let pred = ColPredicate::StrPrefix {
            col: 2,
            prefix: "A".into(),
        };
        let mut col_rows = 0usize;
        let mut bal_sum = 0.0;
        for p in 0..t.partition_count() {
            let mut out = t.column_batch(&[3, 1]);
            t.scan_columns(PartitionId(p), &[3, 1], Some(&pred), &mut out)
                .unwrap();
            col_rows += out.rows();
            bal_sum += out.column(0).floats().unwrap().iter().sum::<f64>();
        }
        // Row-path oracle.
        let mut expect_rows = 0usize;
        let mut expect_sum = 0.0;
        for p in 0..t.partition_count() {
            for tu in t
                .partition(PartitionId(p))
                .unwrap()
                .collect_matching(|tu| pred.matches_tuple(tu))
            {
                expect_rows += 1;
                expect_sum += tu.get(3).as_float().unwrap();
            }
        }
        assert_eq!(col_rows, expect_rows);
        assert!((bal_sum - expect_sum).abs() < 1e-9);
        assert!(col_rows > 0);
    }

    #[test]
    fn shared_snapshot_scan_reuses_until_invalidated() {
        let t = table();
        let rid = t.insert(row(1, 10, "alice", 5.0)).unwrap();
        t.insert(row(1, 11, "bob", 7.0)).unwrap();
        let p = PartitionId(0);
        let proj = [3usize, 1];

        let (b1, s1) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        let (b2, s2) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(b1, b2);
        // Second call was served from the cache, zero-copy.
        assert!(b1.column(0).shares_buffer_with(b2.column(0)));

        // An update moves the epoch: the next shared scan re-materializes
        // and reflects the new value.
        t.update(rid, |tu| {
            tu.set(3, Value::Float(99.0));
        })
        .unwrap();
        let (b3, s3) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert!(s3.epoch_start > s1.epoch_end);
        assert!(!b3.column(0).shares_buffer_with(b1.column(0)));
        assert!(b3.column(0).floats().unwrap().contains(&99.0));
        // ...and the stale image the first caller still holds is intact.
        assert!(!b1.column(0).floats().unwrap().contains(&99.0));

        // An insert invalidates too: the new row must appear.
        t.insert(row(1, 12, "carol", 1.0)).unwrap();
        let (b4, _) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(b4.rows(), 3);

        // Mutating a served batch never corrupts the cached image
        // (copy-on-write).
        let (mut b5, _) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        b5.push_row(&[Value::Float(0.0), Value::Int(0)]).unwrap();
        let (b6, _) = t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(b6.rows(), 3);
        assert_eq!(b5.rows(), 4);

        // A filtered shape caches independently of the unfiltered one.
        let pred = ColPredicate::IntGe { col: 1, min: 11 };
        let (b7, s7) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&pred))
            .unwrap();
        assert_eq!(b7.rows(), 2);
        assert_eq!(s7.matched, 2);
        assert_eq!(s7.prefix, 3);
    }

    #[test]
    fn superset_entry_serves_covered_requests_after_refinement() {
        let t = table();
        for id in 10..30i64 {
            t.insert(row(
                1,
                id,
                if id % 2 == 0 { "Ann" } else { "bo" },
                id as f64,
            ))
            .unwrap();
        }
        let p = PartitionId(0);
        let proj = [3usize, 1];
        // Prime the cache with a wide hull predicate.
        let hull = ColPredicate::IntGe { col: 1, min: 12 };
        t.scan_columns_snapshot_shared(p, &proj, Some(&hull))
            .unwrap();
        let before = t.shared_scan_stats();
        // A narrower covered request is served by refining the entry...
        let req = ColPredicate::IntBetween {
            col: 1,
            min: 15,
            max: 20,
        };
        let (refined, snap) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&req))
            .unwrap();
        let after = t.shared_scan_stats();
        assert_eq!(after.superset_hits, before.superset_hits + 1);
        assert_eq!(after.misses, before.misses, "no fresh scan");
        // ...and equals a direct scan, certificate included.
        let mut direct = t.column_batch(&proj);
        let dsnap = t
            .scan_columns_snapshot(p, &proj, Some(&req), &mut direct)
            .unwrap();
        assert_eq!(refined, direct);
        assert_eq!(snap.matched, dsnap.matched);
        assert_eq!(snap.prefix, dsnap.prefix);
        // An *uncovered* (wider) request misses and scans fresh.
        let wider = ColPredicate::IntGe { col: 1, min: 10 };
        let (b, _) = t
            .scan_columns_snapshot_shared(p, &proj, Some(&wider))
            .unwrap();
        let end = t.shared_scan_stats();
        assert_eq!(end.misses, after.misses + 1);
        assert_eq!(b.rows(), 20);
        // A request whose filter column the projection does not carry can
        // never be served by refinement (the filter cannot be re-checked
        // against the cached batch).
        let off_proj = ColPredicate::StrPrefix {
            col: 2,
            prefix: "A".into(),
        };
        t.scan_columns_snapshot_shared(p, &proj, Some(&off_proj))
            .unwrap();
        assert_eq!(t.shared_scan_stats().superset_hits, end.superset_hits);
    }

    #[test]
    fn dominating_insert_evicts_dominated_entries() {
        let t = table();
        for id in 0..20i64 {
            t.insert(row(1, id, "x", id as f64)).unwrap();
        }
        let p = PartitionId(0);
        let proj = [3usize, 1];
        // A widening stream of hulls — the shared pipeline's signature —
        // must keep exactly one standing entry, not one per hull.
        let hulls: Vec<ColPredicate> = (0..3i64)
            .map(|i| ColPredicate::IntBetween {
                col: 1,
                min: 5 - i,
                max: 10 + i,
            })
            .collect();
        for h in &hulls {
            t.scan_columns_snapshot_shared(p, &proj, Some(h)).unwrap();
        }
        assert_eq!(t.scan_cache_len(), 1, "dominated hulls must be evicted");
        // The survivor is the widest: a narrower repeat is a superset hit.
        let before = t.shared_scan_stats();
        t.scan_columns_snapshot_shared(p, &proj, Some(&hulls[0]))
            .unwrap();
        assert_eq!(
            t.shared_scan_stats().superset_hits,
            before.superset_hits + 1
        );
        // An unfiltered scan of the same projection dominates everything.
        t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(t.scan_cache_len(), 1);
        // ...but an exact repeat still hits zero-copy, and a different
        // projection is untouched by eviction.
        let hits = t.shared_scan_stats().hits;
        t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(t.shared_scan_stats().hits, hits + 1);
        t.scan_columns_snapshot_shared(p, &[2], None).unwrap();
        t.scan_columns_snapshot_shared(p, &proj, None).unwrap();
        assert_eq!(t.scan_cache_len(), 2);
    }

    #[test]
    fn unknown_index_and_partition_errors() {
        let t = table();
        assert!(t
            .lookup_secondary("missing", PartitionId(0), &int_key(1))
            .is_err());
        assert!(t.partition(PartitionId(9)).is_err());
        assert!(t.read(Rid::new(TableId(1), PartitionId(9), 0)).is_err());
        assert!(t.read(Rid::new(TableId(2), PartitionId(0), 0)).is_err());
    }

    #[test]
    fn missing_key_errors() {
        let t = table();
        assert_eq!(
            t.get_rid(&int_keys(&[1, 99])),
            Err(DbError::KeyNotFound(TableId(1)))
        );
    }

    #[test]
    fn serve_scan_matches_local_scans_and_splits() {
        let t = table();
        for w in 1..=4i64 {
            for id in 0..6 {
                t.insert(row(w, id, if id % 2 == 0 { "aa" } else { "zz" }, id as f64))
                    .unwrap();
            }
        }
        let pred = ColPredicate::StrPrefix {
            col: 2,
            prefix: "a".into(),
        };
        // All partitions, unsplit: one certified reply per partition,
        // each equal to the local pushdown scan of that partition.
        let req = ScanRequest {
            partition: None,
            proj: vec![1, 2],
            pred: Some(pred.clone()),
            batch_rows: 0,
            shared: false,
        };
        let (replies, scanned) = t.serve_scan(&req).unwrap();
        assert_eq!(replies.len(), 4);
        assert_eq!(scanned, 24);
        for reply in &replies {
            let mut local = t.column_batch(&req.proj);
            let snap = t
                .scan_columns_snapshot(reply.partition, &req.proj, Some(&pred), &mut local)
                .unwrap();
            assert_eq!(reply.batch, local);
            assert_eq!(reply.snapshot, snap);
            assert_eq!(reply.batch.rows(), 3);
        }
        // Split replies glue back to the unsplit batch and repeat the
        // partition's certificate on every frame.
        let split_req = ScanRequest {
            partition: Some(PartitionId(1)),
            batch_rows: 2,
            ..req.clone()
        };
        let (split, _) = t.serve_scan(&split_req).unwrap();
        assert_eq!(split.len(), 2);
        assert_eq!(split[0].batch.rows(), 2);
        assert_eq!(split[1].batch.rows(), 1);
        assert!(split
            .iter()
            .all(|r| r.snapshot == split[0].snapshot && r.partition == PartitionId(1)));
        // Shared requests ride the cache: a repeat is a hit, not a scan.
        let shared_req = ScanRequest {
            shared: true,
            ..req.clone()
        };
        let misses = t.shared_scan_stats().misses;
        t.serve_scan(&shared_req).unwrap();
        t.serve_scan(&shared_req).unwrap();
        let stats = t.shared_scan_stats();
        assert_eq!(stats.misses, misses + 4);
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn serve_scan_validates_wire_input() {
        let t = table();
        t.insert(row(1, 1, "a", 0.0)).unwrap();
        let base = ScanRequest {
            partition: None,
            proj: vec![0],
            pred: None,
            batch_rows: 0,
            shared: false,
        };
        // Out-of-range projection is an error (never the local panic).
        assert_eq!(
            t.serve_scan(&ScanRequest {
                proj: vec![0, 4],
                ..base.clone()
            }),
            Err(DbError::Codec("scan request projection out of range"))
        );
        // Unknown partition is the usual storage error.
        assert!(t
            .serve_scan(&ScanRequest {
                partition: Some(PartitionId(9)),
                ..base.clone()
            })
            .is_err());
        // Predicate columns past the schema mean "no match", not a fault.
        let (replies, _) = t
            .serve_scan(&ScanRequest {
                pred: Some(ColPredicate::IntGe { col: 40, min: 0 }),
                ..base
            })
            .unwrap();
        assert!(replies.iter().all(|r| r.batch.rows() == 0));
        // Empty partitions still certify: 4 replies for 1 row inserted.
        assert_eq!(replies.len(), 4);
    }
}
