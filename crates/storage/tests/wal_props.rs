//! Property tests hardening the WAL codec the way the scan codec is
//! hardened (PR 8 satellite): a serialized log — or a shipped record
//! batch, same encoding — must roundtrip exactly, and *no* torn prefix,
//! bit-flip, or unknown-op fuzz may ever panic the decoder. A follower
//! applies whatever bytes a faulty link delivers; its only defenses are
//! `DbError` rejections.

use anydb_common::commit::PrepOp;
use anydb_common::repl::{LogOp, ReplMsg};
use anydb_common::{DbError, PartitionId, Rid, TableId, Tuple, TxnId, Value};
use anydb_storage::Wal;
use bytes::{Buf, Bytes};
use proptest::prelude::*;

/// Builds a log of `n` records whose shapes are driven by `shape_seed`,
/// mixing all six ops (including the 2PC `Prepare`/`Decide` records a
/// sharded node logs) and both tuple value types.
fn build_wal(n: usize, shape_seed: u64) -> Wal {
    let wal = Wal::new();
    for i in 0..n {
        let txn = TxnId((shape_seed ^ i as u64) % 7);
        let op = match (shape_seed.wrapping_mul(31).wrapping_add(i as u64)) % 6 {
            0 => LogOp::Insert {
                table: TableId((i % 3) as u32),
                partition: PartitionId((i % 2) as u32),
                slot: i as u32,
                tuple: Tuple::new(vec![Value::Int(i as i64), Value::str("row")]),
            },
            1 => LogOp::Update {
                rid: Rid::new(TableId(0), PartitionId(0), i as u32),
                after: Tuple::new(vec![Value::Null, Value::Float(i as f64)]),
            },
            2 => LogOp::Commit,
            3 => LogOp::Abort,
            4 => LogOp::Prepare {
                coord: (i % 4) as u32,
                ops: (0..i % 3)
                    .map(|k| PrepOp {
                        table: TableId(k as u32),
                        tuple: Tuple::new(vec![Value::Int(k as i64), Value::Null]),
                    })
                    .collect(),
            },
            _ => LogOp::Decide {
                commit: i.is_multiple_of(2),
                parts: (0..i % 3).map(|k| k as u32).collect(),
            },
        };
        wal.append(txn, op);
    }
    wal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialize/deserialize is lossless for arbitrary record mixes.
    #[test]
    fn serialized_log_roundtrips(n in 0usize..40, shape in any::<u64>()) {
        let wal = build_wal(n, shape);
        let records = Wal::deserialize(wal.serialize()).unwrap();
        prop_assert_eq!(records, wal.snapshot());
    }

    /// Every strict prefix of a serialized log is rejected with an error
    /// — never a panic, never a silent partial parse.
    #[test]
    fn every_strict_prefix_is_rejected(n in 1usize..12, shape in any::<u64>()) {
        let bytes = build_wal(n, shape).serialize();
        for cut in 0..bytes.len() {
            let got = Wal::deserialize(bytes.slice(0..cut));
            prop_assert!(got.is_err(), "prefix of {} bytes decoded", cut);
        }
    }

    /// Single-byte corruption anywhere in a serialized log either still
    /// decodes (the flipped byte was payload, e.g. a tuple int) or is
    /// rejected with a `DbError` — it never panics the decoder. This is
    /// the unknown-op fuzz: flips landing on an op tag byte produce tags
    /// 4..=255.
    #[test]
    fn bitflips_never_panic(n in 1usize..10, shape in any::<u64>(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let bytes = build_wal(n, shape).serialize();
        let pos = (pos_seed as usize) % bytes.len();
        let mut fuzzed = bytes.chunk().to_vec();
        fuzzed[pos] ^= flip;
        // Either outcome is fine; what is asserted is "no panic" plus a
        // typed error on rejection.
        match Wal::deserialize(Bytes::copy_from_slice(&fuzzed)) {
            Ok(_) => {}
            Err(DbError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// The same guarantees hold for framed `ReplMsg::Records` batches —
    /// what actually crosses the replication link.
    #[test]
    fn repl_records_frame_prefixes_and_fuzz(n in 1usize..8, shape in any::<u64>(), pos_seed in any::<u64>(), flip in 1u8..=255) {
        let frame = ReplMsg::Records(build_wal(n, shape).snapshot()).encode();
        for cut in 0..frame.len() {
            prop_assert!(ReplMsg::decode(&frame.slice(0..cut)).is_err());
        }
        let pos = (pos_seed as usize) % frame.len();
        let mut fuzzed = frame.chunk().to_vec();
        fuzzed[pos] ^= flip;
        match ReplMsg::decode(&Bytes::copy_from_slice(&fuzzed)) {
            Ok(_) | Err(DbError::Codec(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }
}
