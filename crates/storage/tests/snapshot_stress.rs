//! Stress and property tests for the snapshot-consistency contract of
//! `Partition::scan_columns_snapshot` (DESIGN.md §5–6): OLTP updates and
//! appends race the columnar materialization, and the scan must still
//! deliver (1) no torn rows, (2) a fixed consistent prefix, and (3) an
//! epoch certificate that is truthful about whether writes interleaved.
//! Since PR 5 the scans are served from the write-through column mirror,
//! so these races also pin the mirror's write-through atomicity and the
//! column-level epoch certificates.
//!
//! The torn-row detector is the classic pair invariant: writers always
//! set `(a, 2a)` in one row mutation, so any scanned row with `b != 2a`
//! means the scan observed a half-applied write.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use anydb_common::{
    ColPredicate, ColumnBatch, ColumnDef, DataType, PartitionId, Rid, Schema, TableId, Tuple, Value,
};
use anydb_storage::{Partition, Partitioner, Table};
use proptest::prelude::*;

/// Initial rows: more than one snapshot chunk, so the scan releases and
/// re-acquires the outer lock mid-flight while writers hammer it.
const INIT_ROWS: usize = 4096;

fn pair_row(a: i64) -> Tuple {
    Tuple::new(vec![Value::Int(a), Value::Int(2 * a)])
}

fn check_snapshot(p: &Partition, pred: Option<&ColPredicate>, round: usize) {
    let mut out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap = p.scan_columns_snapshot(&[0, 1], pred, &mut out).unwrap();
    // Fixed prefix: nothing appended mid-scan leaks in, nothing captured
    // is dropped.
    assert!(snap.prefix >= INIT_ROWS, "prefix shrank: {snap:?}");
    assert_eq!(out.rows(), snap.matched, "round {round}: {snap:?}");
    if pred.is_none() {
        assert_eq!(out.rows(), snap.prefix, "round {round}: {snap:?}");
    }
    // No torn rows: the pair invariant holds for every materialized row.
    let a = out.column(0).ints().unwrap();
    let b = out.column(1).ints().unwrap();
    for i in 0..a.len() {
        assert_eq!(
            b[i],
            2 * a[i],
            "torn row at {i} in round {round} ({snap:?})"
        );
    }
}

#[test]
fn snapshot_scan_invariants_hold_under_racing_oltp() {
    // Mirrored partition: the scans under race are served from the
    // write-through column mirror — the PR 5 hot path.
    let p = Arc::new(Partition::with_types(&[DataType::Int, DataType::Int]));
    for i in 0..INIT_ROWS {
        p.append(pair_row(i as i64));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Two updater threads mutating rows of the initial prefix.
    for t in 0..2u64 {
        let p = p.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1);
            while !stop.load(Ordering::Relaxed) {
                // Cheap xorshift for slot and value choice.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let slot = (x % INIT_ROWS as u64) as u32;
                let a = (x >> 32) as i64 % 1_000_000;
                p.update(slot, |tu| {
                    tu.set(0, Value::Int(a));
                    tu.set(1, Value::Int(2 * a));
                })
                .unwrap();
                if x.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        }));
    }
    // One appender thread growing the partition past the captured prefix.
    {
        let p = p.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut next = INIT_ROWS as i64;
            while !stop.load(Ordering::Relaxed) {
                p.append(pair_row(next));
                next += 1;
                std::thread::yield_now();
            }
        }));
    }

    // Reader: repeated snapshots, unfiltered and filtered, while the
    // writers race.
    let pred = ColPredicate::IntGe { col: 0, min: 0 };
    for round in 0..30 {
        check_snapshot(&p, None, round);
        check_snapshot(&p, Some(&pred), round);
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent epilogue: with no writers left, the certificate must
    // report a point-in-time image and repeated snapshots must agree
    // exactly (same prefix, same epochs, same bytes).
    let mut out1 = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap1 = p.scan_columns_snapshot(&[0, 1], None, &mut out1).unwrap();
    let mut out2 = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap2 = p.scan_columns_snapshot(&[0, 1], None, &mut out2).unwrap();
    assert!(snap1.is_point_in_time(), "{snap1:?}");
    assert!(snap1.is_cols_point_in_time(), "{snap1:?}");
    assert_eq!(snap1, snap2);
    assert_eq!(out1, out2);
    assert!(snap1.max_version > 0, "updates must have stamped versions");
}

/// Single-partition `(id pk, a, b)` table for the shared-scan race.
fn pair_table() -> Table {
    Table::new(
        TableId(7),
        Schema::new(
            "pairs",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
            &["id"],
        ),
        Partitioner::by_column(0, 0),
        1,
        Vec::new(),
    )
}

#[test]
fn shared_scan_is_never_stale_and_never_torn_under_races() {
    let t = Arc::new(pair_table());
    for i in 0..INIT_ROWS as i64 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Int(i),
            Value::Int(2 * i),
        ]))
        .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let t = t.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut x = 0xdead_beef_cafe_f00du64.wrapping_mul(w + 1);
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let slot = (x % INIT_ROWS as u64) as u32;
                let a = (x >> 33) as i64;
                let rid = Rid::new(TableId(7), PartitionId(0), slot);
                t.update(rid, |tu| {
                    tu.set(1, Value::Int(a));
                    tu.set(2, Value::Int(2 * a));
                })
                .unwrap();
                if x.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Reader: shared scans while writers race. Whether each scan is a
    // cache hit (no write since the last materialization) or a fresh
    // pass, the pair invariant must hold on every row it returns.
    for round in 0..40 {
        let (out, snap) = t
            .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
            .unwrap();
        assert_eq!(out.rows(), snap.prefix, "round {round}: {snap:?}");
        let a = out.column(0).ints().unwrap();
        let b = out.column(1).ints().unwrap();
        for i in 0..a.len() {
            assert_eq!(b[i], 2 * a[i], "torn/stale row {i} in round {round}");
        }
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent: the shared scan must reflect the FINAL committed state
    // (staleness check), and a repeat must be a zero-copy cache hit.
    let (fresh, snap) = t
        .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
        .unwrap();
    assert!(snap.is_point_in_time());
    let part = t.partition(PartitionId(0)).unwrap();
    let expect: Vec<(i64, i64)> = part
        .collect_matching(|_| true)
        .iter()
        .map(|tu| (tu.get(1).as_int().unwrap(), tu.get(2).as_int().unwrap()))
        .collect();
    let got: Vec<(i64, i64)> = fresh
        .column(0)
        .ints()
        .unwrap()
        .iter()
        .zip(fresh.column(1).ints().unwrap())
        .map(|(&a, &b)| (a, b))
        .collect();
    assert_eq!(got, expect, "shared scan served stale data");
    let (hit, snap2) = t
        .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
        .unwrap();
    assert_eq!(snap, snap2);
    assert!(hit.column(0).shares_buffer_with(fresh.column(0)));
}

/// Single-partition `(id pk, a, b, c)` table: writers hammer `(a, b)`,
/// column `c` stays untouched — the disjoint-column-set arm.
fn wide_pair_table() -> Table {
    Table::new(
        TableId(8),
        Schema::new(
            "wide_pairs",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
                ColumnDef::new("c", DataType::Int),
            ],
            &["id"],
        ),
        Partitioner::by_column(0, 0),
        1,
        Vec::new(),
    )
}

#[test]
fn racing_writer_scans_leave_the_cache_clean() {
    // Two cache invariants under a racing writer on columns (a, b):
    //
    // 1. **PIT-only inserts** (the bugfix): a shared scan that returns a
    //    non-point-in-time certificate must not leave an entry behind —
    //    dead entries used to count toward the blunt clear-all bound and
    //    evict valid ones. We track how many scans *reported* a cacheable
    //    certificate and bound the cache size by that.
    // 2. **Column-epoch survival**: the standing shape over column `c`
    //    (disjoint from the writer's columns) stays a zero-copy cache hit
    //    through the entire storm — its column-set certificate is clean
    //    even while the partition's global epoch races ahead.
    // 3. **Dominated-entry eviction**: a widening chain of hull
    //    predicates (the shared Q3 pipeline's signature) holds at most
    //    one standing entry, because each inserted hull evicts the hulls
    //    it covers — the cache stays bounded even though every round
    //    uses a predicate never seen before.
    let t = Arc::new(wide_pair_table());
    for i in 0..INIT_ROWS as i64 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Int(i),
            Value::Int(2 * i),
            Value::Int(3 * i),
        ]))
        .unwrap();
    }
    let p = PartitionId(0);
    // Standing entry over the untouched column.
    let (c_base, c_snap) = t.scan_columns_snapshot_shared(p, &[3], None).unwrap();
    assert!(c_snap.is_cols_point_in_time());
    assert_eq!(t.scan_cache_len(), 1);

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let t = t.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut x = 0x1234_5678_9abc_def0u64;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let slot = (x % INIT_ROWS as u64) as u32;
                let a = (x >> 33) as i64;
                let rid = Rid::new(TableId(8), PartitionId(0), slot);
                t.update(rid, |tu| {
                    tu.set(1, Value::Int(a));
                    tu.set(2, Value::Int(2 * a));
                })
                .unwrap();
                if x.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        })
    };

    // Six distinct shapes over the contested columns, scanned repeatedly.
    let ge = |col: usize| ColPredicate::IntGe { col, min: i64::MIN };
    let shapes: [(Vec<usize>, Option<ColPredicate>); 6] = [
        (vec![1], None),
        (vec![2], None),
        (vec![1, 2], None),
        (vec![2, 1], None),
        (vec![1], Some(ge(2))),
        (vec![2], Some(ge(1))),
    ];
    let mut cacheable = 0usize;
    for round in 0..20 {
        for (proj, pred) in &shapes {
            let (out, snap) = t
                .scan_columns_snapshot_shared(p, proj, pred.as_ref())
                .unwrap();
            if snap.is_cols_point_in_time() {
                cacheable += 1;
            }
            // Torn rows stay impossible either way.
            if proj.as_slice() == [1, 2] {
                let a = out.column(0).ints().unwrap();
                let b = out.column(1).ints().unwrap();
                for i in 0..a.len() {
                    assert_eq!(b[i], 2 * a[i], "torn row {i} round {round}");
                }
            }
        }
        // (3) Widening hull over the contested column: never seen
        // before, so it can only be answered by refining a valid
        // superset entry (the unfiltered `[1]` shape) or by a fresh
        // scan. Whenever it inserts, it dominates — and must evict —
        // every hull before it, so the whole chain contributes at most
        // ONE standing entry. Without dominated-entry eviction this
        // would add an entry per round and blow the bound below.
        let hull = ColPredicate::IntGe {
            col: 1,
            min: -(round as i64),
        };
        t.scan_columns_snapshot_shared(p, &[1], Some(&hull))
            .unwrap();
        // (1) Cache bound: the standing `c` entry, at most one entry per
        // contested shape that ever reported a cacheable certificate,
        // and at most one standing hull from the widening chain.
        assert!(
            t.scan_cache_len() <= 2 + cacheable.min(shapes.len()),
            "round {round}: {} entries with only {cacheable} cacheable scans",
            t.scan_cache_len()
        );
        // (2) The disjoint-column entry is still a zero-copy hit.
        let (c_hit, c_snap2) = t.scan_columns_snapshot_shared(p, &[3], None).unwrap();
        assert_eq!(c_snap, c_snap2, "round {round}: certificate moved");
        assert!(
            c_hit.column(0).shares_buffer_with(c_base.column(0)),
            "round {round}: disjoint-column scan was re-materialized"
        );
    }

    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}

/// One generated operation of the mirror-vs-oracle property test.
#[derive(Debug, Clone)]
enum MirrorOp {
    /// Append a fresh row built from the seed.
    Append(i64),
    /// Update column `col % 3` of slot `slot % len` from the seed.
    Update { slot: u64, col: u8, seed: i64 },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mirror-backed scans agree with the row-store oracle under any
    /// interleaving of appends and updates (including nulls, string
    /// repointing and identity writes), for arbitrary projections, with
    /// and without predicate pushdown — and quiescent certificates are
    /// always point-in-time.
    #[test]
    fn mirror_scans_agree_with_row_oracle(
        ops in prop::collection::vec(
            prop_oneof![
                (any::<i64>()).prop_map(MirrorOp::Append),
                (any::<u64>(), any::<u8>(), any::<i64>())
                    .prop_map(|(slot, col, seed)| MirrorOp::Update { slot, col, seed }),
            ],
            1..120,
        ),
        proj_seed in any::<u64>(),
        min in -8i64..8,
    ) {
        let types = [DataType::Int, DataType::Str, DataType::Float];
        let p = Partition::with_types(&types);
        // Row builder: small value domains so updates collide with prior
        // values (exercising the no-change diff) and nulls are common.
        let val = |col: usize, seed: i64| -> Value {
            match (col, seed.rem_euclid(7)) {
                (_, 0) => Value::Null,
                (0, s) => Value::Int(s - 3),
                (1, s) => Value::str(format!("s{s}")),
                (_, s) => Value::Float(s as f64 / 2.0),
            }
        };
        for op in &ops {
            match op {
                MirrorOp::Append(seed) => {
                    p.append(Tuple::new(vec![
                        val(0, *seed),
                        val(1, seed.wrapping_add(1)),
                        val(2, seed.wrapping_add(2)),
                    ]));
                }
                MirrorOp::Update { slot, col, seed } => {
                    if p.is_empty() {
                        continue;
                    }
                    let slot = (slot % p.len() as u64) as u32;
                    let col = (*col % 3) as usize;
                    let v = val(col, *seed);
                    p.update(slot, |tu| tu.set(col, v)).unwrap();
                }
            }
        }
        // A projection derived from the seed (duplicates allowed — views
        // may project a column twice).
        let all: [usize; 3] = [0, 1, 2];
        let proj: Vec<usize> = (0..(proj_seed % 3 + 1))
            .map(|i| all[((proj_seed >> (8 * i)) % 3) as usize])
            .collect();
        let types_proj: Vec<DataType> = proj.iter().map(|&c| types[c]).collect();
        for pred in [None, Some(ColPredicate::IntGe { col: 0, min })] {
            let mut out = ColumnBatch::new(&types_proj);
            let snap = p
                .scan_columns_snapshot(&proj, pred.as_ref(), &mut out)
                .unwrap();
            prop_assert!(snap.is_point_in_time(), "quiescent: {snap:?}");
            prop_assert!(snap.is_cols_point_in_time(), "quiescent: {snap:?}");
            prop_assert_eq!(snap.matched, out.rows());
            // Row-store oracle: walk the latched tuples.
            let mut oracle = ColumnBatch::new(&types_proj);
            for tu in p.collect_matching(|tu| {
                pred.as_ref().is_none_or(|pr| pr.matches_tuple(tu))
            }) {
                let row: Vec<Value> = proj.iter().map(|&c| tu.get(c).clone()).collect();
                oracle.push_row(&row).unwrap();
            }
            prop_assert_eq!(&out, &oracle, "proj {:?} pred {:?}", &proj, &pred);
            // And the plain scan entry point agrees with the snapshot one.
            let mut plain = ColumnBatch::new(&types_proj);
            p.scan_columns(&proj, pred.as_ref(), &mut plain).unwrap();
            prop_assert_eq!(&plain, &out);
        }
    }

    /// The full remote-scan path — encode the request, decode it as the
    /// storage AC would, serve it with `Table::serve_scan`, wire-roundtrip
    /// every reply — yields exactly the rows a direct local snapshot scan
    /// yields, for arbitrary data, projections, predicates, split
    /// granularities, and both snapshot modes (DESIGN.md §8).
    #[test]
    fn remote_scan_agrees_with_local_scan(
        data_seed in any::<u64>(), nrows in 0usize..96, batch_rows in 0usize..24,
        shared in any::<bool>(), min in -40i64..40, pred_kind in 0u8..3,
        proj_seed in any::<u64>(),
    ) {
        use anydb_common::{ScanReply, ScanRequest};
        let t = routed_table();
        let mut x = data_seed | 1;
        for i in 0..nrows as i64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            t.insert(Tuple::new(vec![
                Value::Int(i % 3),
                Value::Int(i),
                Value::Int((x % 80) as i64 - 40),
                Value::str(format!("s{}", x % 5)),
            ]))
            .unwrap();
        }
        // Random projection over the 4 columns, duplicates allowed.
        let proj: Vec<usize> = (0..(proj_seed % 4 + 1))
            .map(|i| ((proj_seed >> (8 * i)) % 4) as usize)
            .collect();
        let pred = match pred_kind {
            0 => None,
            1 => Some(ColPredicate::IntGe { col: 2, min }),
            _ => Some(ColPredicate::StrPrefix { col: 3, prefix: "s1".into() }),
        };
        let req = ScanRequest {
            partition: None,
            proj: proj.clone(),
            pred: pred.clone(),
            batch_rows,
            shared,
        };
        // The request the serve side acts on is the one off the wire.
        let req = ScanRequest::decode(&req.encode()).unwrap();
        let (replies, scanned) = t.serve_scan(&req).unwrap();
        prop_assert_eq!(scanned, nrows);
        // Wire-roundtrip every reply, then compare per partition against
        // a direct local snapshot scan.
        let replies: Vec<ScanReply> = replies
            .iter()
            .map(|r| ScanReply::decode(&r.encode()).unwrap())
            .collect();
        for p in 0..t.partition_count() {
            let pid = PartitionId(p);
            let mut direct = t.column_batch(&proj);
            let snap = t
                .scan_columns_snapshot(pid, &proj, pred.as_ref(), &mut direct)
                .unwrap();
            let part: Vec<&ScanReply> =
                replies.iter().filter(|r| r.partition == pid).collect();
            prop_assert!(!part.is_empty(), "partition {p} got no certified reply");
            let mut glued = Vec::new();
            for r in &part {
                prop_assert_eq!(r.snapshot.prefix, snap.prefix);
                prop_assert_eq!(r.snapshot.matched, snap.matched);
                if batch_rows > 0 {
                    prop_assert!(r.batch.rows() <= batch_rows, "split ignored batch_rows");
                }
                glued.extend(r.batch.to_tuples());
            }
            prop_assert_eq!(glued, direct.to_tuples(), "partition {} diverged", p);
        }
    }
}

/// Three-partition `(w, id, a, s)` table for the remote-protocol
/// agreement test: `w` routes rows across partitions.
fn routed_table() -> Table {
    Table::new(
        TableId(9),
        Schema::new(
            "routed",
            vec![
                ColumnDef::new("w", DataType::Int),
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("s", DataType::Str),
            ],
            &["w", "id"],
        ),
        Partitioner::by_column(0, 0),
        3,
        Vec::new(),
    )
}
