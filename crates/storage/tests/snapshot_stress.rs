//! Stress tests for the snapshot-consistency contract of
//! `Partition::scan_columns_snapshot` (DESIGN.md §5): OLTP updates and
//! appends race the columnar materialization, and the scan must still
//! deliver (1) no torn rows, (2) a fixed consistent prefix, and (3) an
//! epoch certificate that is truthful about whether writes interleaved.
//!
//! The torn-row detector is the classic pair invariant: writers always
//! set `(a, 2a)` in one row mutation, so any scanned row with `b != 2a`
//! means the scan observed a half-applied write.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use anydb_common::{
    ColPredicate, ColumnBatch, ColumnDef, DataType, PartitionId, Rid, Schema, TableId, Tuple, Value,
};
use anydb_storage::{Partition, Partitioner, Table};

/// Initial rows: more than one snapshot chunk, so the scan releases and
/// re-acquires the outer lock mid-flight while writers hammer it.
const INIT_ROWS: usize = 4096;

fn pair_row(a: i64) -> Tuple {
    Tuple::new(vec![Value::Int(a), Value::Int(2 * a)])
}

fn check_snapshot(p: &Partition, pred: Option<&ColPredicate>, round: usize) {
    let mut out = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap = p.scan_columns_snapshot(&[0, 1], pred, &mut out).unwrap();
    // Fixed prefix: nothing appended mid-scan leaks in, nothing captured
    // is dropped.
    assert!(snap.prefix >= INIT_ROWS, "prefix shrank: {snap:?}");
    assert_eq!(out.rows(), snap.matched, "round {round}: {snap:?}");
    if pred.is_none() {
        assert_eq!(out.rows(), snap.prefix, "round {round}: {snap:?}");
    }
    // No torn rows: the pair invariant holds for every materialized row.
    let a = out.column(0).ints().unwrap();
    let b = out.column(1).ints().unwrap();
    for i in 0..a.len() {
        assert_eq!(
            b[i],
            2 * a[i],
            "torn row at {i} in round {round} ({snap:?})"
        );
    }
}

#[test]
fn snapshot_scan_invariants_hold_under_racing_oltp() {
    let p = Arc::new(Partition::new());
    for i in 0..INIT_ROWS {
        p.append(pair_row(i as i64));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    // Two updater threads mutating rows of the initial prefix.
    for t in 0..2u64 {
        let p = p.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t + 1);
            while !stop.load(Ordering::Relaxed) {
                // Cheap xorshift for slot and value choice.
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let slot = (x % INIT_ROWS as u64) as u32;
                let a = (x >> 32) as i64 % 1_000_000;
                p.update(slot, |tu| {
                    tu.set(0, Value::Int(a));
                    tu.set(1, Value::Int(2 * a));
                })
                .unwrap();
                if x.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        }));
    }
    // One appender thread growing the partition past the captured prefix.
    {
        let p = p.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut next = INIT_ROWS as i64;
            while !stop.load(Ordering::Relaxed) {
                p.append(pair_row(next));
                next += 1;
                std::thread::yield_now();
            }
        }));
    }

    // Reader: repeated snapshots, unfiltered and filtered, while the
    // writers race.
    let pred = ColPredicate::IntGe { col: 0, min: 0 };
    for round in 0..30 {
        check_snapshot(&p, None, round);
        check_snapshot(&p, Some(&pred), round);
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent epilogue: with no writers left, the certificate must
    // report a point-in-time image and repeated snapshots must agree
    // exactly (same prefix, same epochs, same bytes).
    let mut out1 = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap1 = p.scan_columns_snapshot(&[0, 1], None, &mut out1).unwrap();
    let mut out2 = ColumnBatch::new(&[DataType::Int, DataType::Int]);
    let snap2 = p.scan_columns_snapshot(&[0, 1], None, &mut out2).unwrap();
    assert!(snap1.is_point_in_time(), "{snap1:?}");
    assert_eq!(snap1, snap2);
    assert_eq!(out1, out2);
    assert!(snap1.max_version > 0, "updates must have stamped versions");
}

/// Single-partition `(id pk, a, b)` table for the shared-scan race.
fn pair_table() -> Table {
    Table::new(
        TableId(7),
        Schema::new(
            "pairs",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
            &["id"],
        ),
        Partitioner::by_column(0, 0),
        1,
        Vec::new(),
    )
}

#[test]
fn shared_scan_is_never_stale_and_never_torn_under_races() {
    let t = Arc::new(pair_table());
    for i in 0..INIT_ROWS as i64 {
        t.insert(Tuple::new(vec![
            Value::Int(i),
            Value::Int(i),
            Value::Int(2 * i),
        ]))
        .unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for w in 0..2u64 {
        let t = t.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let mut x = 0xdead_beef_cafe_f00du64.wrapping_mul(w + 1);
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let slot = (x % INIT_ROWS as u64) as u32;
                let a = (x >> 33) as i64;
                let rid = Rid::new(TableId(7), PartitionId(0), slot);
                t.update(rid, |tu| {
                    tu.set(1, Value::Int(a));
                    tu.set(2, Value::Int(2 * a));
                })
                .unwrap();
                if x.is_multiple_of(64) {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Reader: shared scans while writers race. Whether each scan is a
    // cache hit (no write since the last materialization) or a fresh
    // pass, the pair invariant must hold on every row it returns.
    for round in 0..40 {
        let (out, snap) = t
            .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
            .unwrap();
        assert_eq!(out.rows(), snap.prefix, "round {round}: {snap:?}");
        let a = out.column(0).ints().unwrap();
        let b = out.column(1).ints().unwrap();
        for i in 0..a.len() {
            assert_eq!(b[i], 2 * a[i], "torn/stale row {i} in round {round}");
        }
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    // Quiescent: the shared scan must reflect the FINAL committed state
    // (staleness check), and a repeat must be a zero-copy cache hit.
    let (fresh, snap) = t
        .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
        .unwrap();
    assert!(snap.is_point_in_time());
    let part = t.partition(PartitionId(0)).unwrap();
    let expect: Vec<(i64, i64)> = part
        .collect_matching(|_| true)
        .iter()
        .map(|tu| (tu.get(1).as_int().unwrap(), tu.get(2).as_int().unwrap()))
        .collect();
    let got: Vec<(i64, i64)> = fresh
        .column(0)
        .ints()
        .unwrap()
        .iter()
        .zip(fresh.column(1).ints().unwrap())
        .map(|(&a, &b)| (a, b))
        .collect();
    assert_eq!(got, expect, "shared scan served stale data");
    let (hit, snap2) = t
        .scan_columns_snapshot_shared(PartitionId(0), &[1, 2], None)
        .unwrap();
    assert_eq!(snap, snap2);
    assert!(hit.column(0).shares_buffer_with(fresh.column(0)));
}
