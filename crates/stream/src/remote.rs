//! The scan connection: request/reply link plumbing for remote
//! pushed-down scans (DESIGN.md §8).
//!
//! A connection is a pair of modeled [`SimLink`]s over the *same*
//! [`LinkSpec`] — one carrying encoded `ScanRequest` frames toward the
//! storage AC, one carrying encoded `ScanReply` frames back. Frames are
//! opaque [`Bytes`] here: the stream layer moves and meters them, the
//! endpoints (`anydb_common::scan` codecs, `anydb_core`'s serve loop)
//! decide what they mean. Every transfer is charged its **actual encoded
//! length**, so what the ablations report as "wire bytes" is exactly what
//! the codec produced, not an estimate.
//!
//! Shutdown is by drop, like every stream in the system: the requester
//! dropping its sender ends the storage side's request loop; the storage
//! side dropping its reply sender is end-of-stream for the consumer.

use bytes::Bytes;

use crate::fault::FaultSpec;
use crate::link::{LinkReceiver, LinkSender, LinkSpec, SimLink};

/// The compute-AC end of a scan connection: sends request frames, hands
/// out the reply stream.
pub struct ScanRequester {
    req_tx: Option<LinkSender<Bytes>>,
    reply_rx: Option<LinkReceiver<Bytes>>,
    bytes_sent: usize,
}

/// The storage-AC end of a scan connection: receives request frames,
/// ships reply frames.
pub struct ScanResponder {
    req_rx: LinkReceiver<Bytes>,
    reply_tx: LinkSender<Bytes>,
    bytes_sent: usize,
}

/// Opens a scan connection over `spec` (both directions modeled with the
/// same link class, as a full-duplex NIC would) with `ring` slots of
/// buffering per direction.
pub fn scan_connection(spec: LinkSpec, ring: usize) -> (ScanRequester, ScanResponder) {
    let (req_tx, req_rx) = SimLink::channel::<Bytes>(spec, ring);
    let (reply_tx, reply_rx) = SimLink::channel::<Bytes>(spec, ring);
    (
        ScanRequester {
            req_tx: Some(req_tx),
            reply_rx: Some(reply_rx),
            bytes_sent: 0,
        },
        ScanResponder {
            req_rx,
            reply_tx,
            bytes_sent: 0,
        },
    )
}

/// Like [`scan_connection`] but with `reply_faults` armed on the reply
/// direction: reply frames can be dropped, delayed, or cut off entirely.
/// This is how the retry layer is exercised — requests get through, the
/// answers go missing.
pub fn scan_connection_faulty(
    spec: LinkSpec,
    ring: usize,
    reply_faults: FaultSpec,
) -> (ScanRequester, ScanResponder) {
    let (requester, mut responder) = scan_connection(spec, ring);
    responder.reply_tx.inject_faults(reply_faults);
    (requester, responder)
}

impl ScanRequester {
    /// Ships one encoded request frame, charged its encoded length.
    /// `Err` means the storage side hung up.
    pub fn send_request(&mut self, frame: Bytes) -> Result<(), Bytes> {
        let tx = self.req_tx.as_mut().expect("requests already finished");
        let bytes = frame.len();
        tx.send_blocking(frame, bytes)?;
        self.bytes_sent += bytes;
        Ok(())
    }

    /// Signals no-more-requests (drops the request sender, which ends the
    /// responder's [`ScanResponder::recv_request_blocking`] loop) and
    /// returns the reply stream for draining.
    pub fn finish_requests(&mut self) -> LinkReceiver<Bytes> {
        self.req_tx = None;
        self.reply_rx.take().expect("reply stream already taken")
    }

    /// Request bytes shipped so far (the "cost of asking" an ablation
    /// must charge against pushdown's savings).
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }
}

impl ScanResponder {
    /// Blocks for the next request frame; `None` means the requester
    /// dropped its sender and no more requests will ever arrive.
    pub fn recv_request_blocking(&mut self) -> Option<Bytes> {
        self.req_rx.recv_blocking()
    }

    /// Ships one encoded reply frame, charged its encoded length. `Err`
    /// means the requester hung up.
    pub fn send_reply(&mut self, frame: Bytes) -> Result<(), Bytes> {
        let bytes = frame.len();
        self.reply_tx.send_blocking(frame, bytes)?;
        self.bytes_sent += bytes;
        Ok(())
    }

    /// Ships a burst of reply frames as pipelined transfers (each keeps
    /// its own serialized wire time, the group costs one clock read —
    /// see [`LinkSender::send_pipelined_blocking`]). Returns
    /// `Err(undelivered)` on requester disconnect.
    pub fn send_replies(&mut self, frames: impl IntoIterator<Item = Bytes>) -> Result<(), usize> {
        let mut total = 0usize;
        let items: Vec<(Bytes, usize)> = frames
            .into_iter()
            .map(|f| {
                let bytes = f.len();
                total += bytes;
                (f, bytes)
            })
            .collect();
        self.reply_tx.send_pipelined_blocking(items)?;
        self.bytes_sent += total;
        Ok(())
    }

    /// Reply bytes shipped so far.
    pub fn bytes_sent(&self) -> usize {
        self.bytes_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Buf;

    #[test]
    fn request_reply_roundtrip_and_drop_shutdown() {
        let (mut requester, mut responder) = scan_connection(LinkSpec::instant(), 8);
        requester
            .send_request(Bytes::from_static(b"ask-1"))
            .unwrap();
        assert_eq!(requester.bytes_sent(), 5);
        let got = responder.recv_request_blocking().unwrap();
        assert_eq!(got.chunk(), b"ask-1");
        responder
            .send_replies([Bytes::from_static(b"row"), Bytes::from_static(b"rows")])
            .unwrap();
        assert_eq!(responder.bytes_sent(), 7);
        let mut replies = requester.finish_requests();
        // The dropped request sender ends the responder's loop.
        assert!(responder.recv_request_blocking().is_none());
        drop(responder);
        assert_eq!(replies.recv_blocking().unwrap().chunk(), b"row");
        assert_eq!(replies.recv_blocking().unwrap().chunk(), b"rows");
        // Responder dropped after its burst: end-of-stream.
        assert!(replies.recv_blocking().is_none());
    }

    #[test]
    fn disconnects_surface_as_errors() {
        let (mut requester, responder) = scan_connection(LinkSpec::instant(), 4);
        drop(responder);
        assert!(requester.send_request(Bytes::from_static(b"x")).is_err());

        let (requester, mut responder) = scan_connection(LinkSpec::instant(), 4);
        drop(requester);
        assert!(responder.recv_request_blocking().is_none());
        assert!(responder.send_reply(Bytes::from_static(b"y")).is_err());
        assert_eq!(responder.bytes_sent(), 0);
    }
}
