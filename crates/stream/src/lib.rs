//! # anydb-stream
//!
//! The streaming substrate of the AnyDB reproduction. The paper's execution
//! model instruments generic components (ACs) with an *event stream* and a
//! *data stream*; this crate provides the transport for both:
//!
//! * [`adaptive`] — depth-driven batch sizing: the feedback controller
//!   that turns the queues' depth mirrors into an online batch-size knob,
//! * [`spsc`] — a lock-free single-producer/single-consumer ring buffer,
//!   our stand-in for the Folly SPSC queue the paper uses for local
//!   shared-memory beaming (footnote 1 in §4),
//! * [`inbox`] — a multi-producer event inbox used as an AC's event queue,
//! * [`link`] — [`link::SimLink`]: an SPSC ring with a latency/bandwidth
//!   delivery model, simulating NUMA links, InfiniBand/DPI flows, and TCP,
//! * [`fault`] — deterministic, seed-driven fault injection for those
//!   links: drop windows, delay spikes, and permanent cuts,
//! * [`network`] — link classes and the simulated server topology,
//! * [`batch`] — tuple batches (the unit shipped on data streams),
//! * [`flow`] — DPI-style flows that filter/project/partition *en route*
//!   (the "NIC as co-processor" effect of Figure 6),
//! * [`beam`] — data beams: data streams initiated before their consuming
//!   events exist, plus the registry consumers use to attach to them.
//!
//! Everything is non-blocking: receivers never wait for data — exactly the
//! execution model of §2.1.

pub mod adaptive;
pub mod batch;
pub mod beam;
pub mod fault;
pub mod flow;
pub mod inbox;
pub mod link;
pub mod network;
pub mod remote;
pub mod spsc;

pub use batch::Batch;
pub use beam::{BeamId, BeamReader, BeamRegistry};
pub use fault::{FaultAction, FaultSpec, FaultState, FaultStats};
pub use inbox::{Inbox, InboxSender};
pub use link::{DeadlineRecv, LinkReceiver, LinkSender, LinkSpec, RecvState, SimLink};
pub use network::{LinkClass, Topology};
pub use remote::{scan_connection, scan_connection_faulty, ScanRequester, ScanResponder};
pub use spsc::{spsc_channel, PopState, SpscConsumer, SpscProducer};
