//! Lock-free single-producer/single-consumer ring buffer.
//!
//! This is our stand-in for the Folly SPSC queue the paper uses for local
//! data beaming. One writer, one reader, a fixed-capacity ring, and two
//! cache-padded positions. The producer owns `tail`, the consumer owns
//! `head`; each reads the other side's position with `Acquire` and
//! publishes its own with `Release`, so a popped element is always fully
//! initialized and a pushed slot is always fully vacated.
//!
//! On top of plain `push`/`pop`, the consumer can [`SpscConsumer::peek`] —
//! needed by the simulated network link to look at a message's delivery
//! time without consuming it (non-blocking "data not there yet").

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::utils::CachePadded;

/// Result of a non-blocking pop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopState {
    /// Ring is empty but the producer is still connected.
    Empty,
    /// Ring is empty and the producer is gone: no more data will ever come.
    Disconnected,
}

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot the consumer will read. Owned by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will write. Owned by the producer.
    tail: CachePadded<AtomicUsize>,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
}

// SAFETY: the ring is shared between exactly one producer and one consumer
// (enforced by the non-Clone `SpscProducer` / `SpscConsumer` wrappers). All
// slot accesses are ordered by the Acquire/Release pair on head/tail.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Only reachable once both endpoints are gone; drain leftovers.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for pos in head..tail {
            let slot = &self.buf[pos % self.cap];
            // SAFETY: slots in [head, tail) were initialized by the producer
            // and never consumed.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// The sending half. Not cloneable: single producer by construction.
pub struct SpscProducer<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving half. Not cloneable: single consumer by construction.
pub struct SpscConsumer<T> {
    ring: Arc<Ring<T>>,
}

/// Creates an SPSC channel with capacity for `cap` elements.
///
/// # Panics
/// Panics if `cap == 0`.
pub fn spsc_channel<T>(cap: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(cap > 0, "spsc capacity must be positive");
    let ring = Arc::new(Ring {
        buf: (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        cap,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
    });
    (SpscProducer { ring: ring.clone() }, SpscConsumer { ring })
}

impl<T> SpscProducer<T> {
    /// Attempts to push; returns the value back if the ring is full or the
    /// consumer is gone.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        let ring = &*self.ring;
        if !ring.consumer_alive.load(Ordering::Acquire) {
            return Err(PushError::Disconnected(value));
        }
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail - head == ring.cap {
            return Err(PushError::Full(value));
        }
        let slot = &ring.buf[tail % ring.cap];
        // SAFETY: slot at `tail` is vacant: consumer has released it
        // (head > tail - cap) and only this producer writes.
        unsafe { (*slot.get()).write(value) };
        ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Bulk push: copies as many leading elements of `items` as fit into
    /// the ring and returns how many were taken.
    ///
    /// The point versus a `push` loop is amortization: one consumer-side
    /// `head` load and one `tail` publish cover the whole chunk, so the
    /// per-element cost drops from two synchronizing atomics to a slot
    /// write. Returns `Err` if the consumer is gone (no elements taken).
    pub fn push_slice(&mut self, items: &[T]) -> Result<usize, PopState>
    where
        T: Clone,
    {
        let ring = &*self.ring;
        if !ring.consumer_alive.load(Ordering::Acquire) {
            return Err(PopState::Disconnected);
        }
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        let free = ring.cap - (tail - head);
        let n = free.min(items.len());
        // Write the chunk as (at most) two contiguous segments so the
        // per-element work is a plain clone — no modulo, no bounds check —
        // and trivially vectorizes for Copy payloads.
        let idx = tail % ring.cap;
        let first = (ring.cap - idx).min(n);
        for (slot, item) in ring.buf[idx..idx + first].iter().zip(&items[..first]) {
            // SAFETY: slots [tail, tail + n) are vacant (n ≤ free) and
            // only this producer writes.
            unsafe { (*slot.get()).write(item.clone()) };
        }
        for (slot, item) in ring.buf[..n - first].iter().zip(&items[first..n]) {
            // SAFETY: as above (wrapped segment).
            unsafe { (*slot.get()).write(item.clone()) };
        }
        ring.tail.store(tail + n, Ordering::Release);
        Ok(n)
    }

    /// Bulk push by move: drains up to `free` elements from the front of
    /// `items` into the ring, returning how many were taken. Like
    /// [`SpscProducer::push_slice`] but for non-`Clone` payloads (events
    /// carrying completion channels).
    pub fn push_drain(&mut self, items: &mut Vec<T>) -> Result<usize, PopState> {
        let ring = &*self.ring;
        if !ring.consumer_alive.load(Ordering::Acquire) {
            return Err(PopState::Disconnected);
        }
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        let free = ring.cap - (tail - head);
        let n = free.min(items.len());
        let idx = tail % ring.cap;
        let first = (ring.cap - idx).min(n);
        let mut moved = items.drain(..n);
        for slot in &ring.buf[idx..idx + first] {
            // SAFETY: as in push_slice; drain yields exactly n items.
            unsafe { (*slot.get()).write(moved.next().expect("drain length")) };
        }
        for slot in &ring.buf[..n - first] {
            // SAFETY: as above (wrapped segment).
            unsafe { (*slot.get()).write(moved.next().expect("drain length")) };
        }
        debug_assert!(moved.next().is_none());
        drop(moved);
        ring.tail.store(tail + n, Ordering::Release);
        Ok(n)
    }

    /// Pushes, spinning until space is available. Returns `Err` with the
    /// value if the consumer disconnects while waiting.
    pub fn push_blocking(&mut self, mut value: T) -> Result<(), T> {
        loop {
            match self.push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(v),
                Err(PushError::Full(v)) => {
                    value = v;
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail.load(Ordering::Relaxed) - ring.head.load(Ordering::Acquire)
    }

    /// True if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.cap
    }

    /// True if the consumer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        !self.ring.consumer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscProducer<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
    }
}

/// Why a push failed.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// Ring full; retry later.
    Full(T),
    /// Consumer dropped; no push will ever succeed again.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// Recovers the value that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Disconnected(v) => v,
        }
    }
}

impl<T> SpscConsumer<T> {
    /// Non-blocking pop.
    pub fn pop(&mut self) -> Result<T, PopState> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return if ring.producer_alive.load(Ordering::Acquire) {
                // Re-check: the producer may have pushed between our tail
                // load and the liveness check; report Empty either way —
                // callers poll again.
                Err(PopState::Empty)
            } else if ring.tail.load(Ordering::Acquire) != head {
                Err(PopState::Empty)
            } else {
                Err(PopState::Disconnected)
            };
        }
        let slot = &ring.buf[head % ring.cap];
        // SAFETY: slot at `head` was initialized by the producer (head <
        // tail) and only this consumer reads it.
        let value = unsafe { (*slot.get()).assume_init_read() };
        ring.head.store(head + 1, Ordering::Release);
        Ok(value)
    }

    /// Peeks at the next element without consuming it.
    ///
    /// Safe because only the consumer advances `head`, so the referenced
    /// slot cannot be overwritten while the borrow lives.
    pub fn peek(&self) -> Option<&T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.buf[head % ring.cap];
        // SAFETY: see above; slot is initialized and stable under `&self`.
        Some(unsafe { (*slot.get()).assume_init_ref() })
    }

    /// Bulk pop: moves up to `max` queued elements into `out` and returns
    /// how many were taken (mirror of [`SpscProducer::push_slice`]: one
    /// `tail` load and one `head` publish per chunk). `Err(Empty)` /
    /// `Err(Disconnected)` when nothing was available.
    pub fn pop_chunk(&mut self, out: &mut Vec<T>, max: usize) -> Result<usize, PopState> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        let avail = tail - head;
        if avail == 0 {
            return if ring.producer_alive.load(Ordering::Acquire) {
                Err(PopState::Empty)
            } else if ring.tail.load(Ordering::Acquire) != head {
                // Producer pushed between our tail load and the liveness
                // check; report Empty — callers poll again.
                Err(PopState::Empty)
            } else {
                Err(PopState::Disconnected)
            };
        }
        let n = avail.min(max);
        out.reserve(n);
        let idx = head % ring.cap;
        let first = (ring.cap - idx).min(n);
        for slot in &ring.buf[idx..idx + first] {
            // SAFETY: slots [head, head + n) were initialized by the
            // producer (n ≤ tail - head) and only this consumer reads.
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        for slot in &ring.buf[..n - first] {
            // SAFETY: as above (wrapped segment).
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        ring.head.store(head + n, Ordering::Release);
        Ok(n)
    }

    /// Pops, spinning until an element arrives or the producer disconnects.
    pub fn pop_blocking(&mut self) -> Option<T> {
        loop {
            match self.pop() {
                Ok(v) => return Some(v),
                Err(PopState::Disconnected) => return None,
                Err(PopState::Empty) => {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Number of elements currently queued.
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail.load(Ordering::Acquire) - ring.head.load(Ordering::Relaxed)
    }

    /// True if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the producer half has been dropped (data may still be queued).
    pub fn is_disconnected(&self) -> bool {
        !self.ring.producer_alive.load(Ordering::Acquire)
    }
}

impl<T> Drop for SpscConsumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (mut tx, mut rx) = spsc_channel(4);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Ok(1));
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Ok(2));
        assert_eq!(rx.pop(), Ok(3));
        assert_eq!(rx.pop(), Err(PopState::Empty));
    }

    #[test]
    fn full_ring_rejects_push() {
        let (mut tx, mut rx) = spsc_channel(2);
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(tx.push(3), Err(PushError::Full(3)));
        assert_eq!(rx.pop(), Ok(1));
        tx.push(3).unwrap();
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn peek_does_not_consume() {
        let (mut tx, mut rx) = spsc_channel(2);
        tx.push(42).unwrap();
        assert_eq!(rx.peek(), Some(&42));
        assert_eq!(rx.peek(), Some(&42));
        assert_eq!(rx.pop(), Ok(42));
        assert_eq!(rx.peek(), None);
    }

    #[test]
    fn disconnect_detected_by_consumer() {
        let (mut tx, mut rx) = spsc_channel(2);
        tx.push(1).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Ok(1));
        assert_eq!(rx.pop(), Err(PopState::Disconnected));
    }

    #[test]
    fn disconnect_detected_by_producer() {
        let (mut tx, rx) = spsc_channel(2);
        drop(rx);
        assert_eq!(tx.push(1), Err(PushError::Disconnected(1)));
        assert!(tx.is_disconnected());
    }

    #[test]
    fn leftover_elements_are_dropped() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc_channel(4);
        tx.push(D).unwrap();
        tx.push(D).unwrap();
        drop(tx);
        drop(rx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn wraps_around_many_times() {
        let (mut tx, mut rx) = spsc_channel(3);
        for i in 0..1000 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Ok(i));
        }
    }

    #[test]
    fn cross_thread_transfer_preserves_order_and_count() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = spsc_channel(1024);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                tx.push_blocking(i).unwrap();
            }
        });
        let mut expected = 0u64;
        while let Some(v) = rx.pop_blocking() {
            assert_eq!(v, expected);
            expected += 1;
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }

    #[test]
    fn pop_blocking_returns_none_after_disconnect() {
        let (tx, mut rx) = spsc_channel::<u32>(2);
        let h = std::thread::spawn(move || rx.pop_blocking());
        drop(tx);
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn capacity_reported() {
        let (tx, _rx) = spsc_channel::<u8>(7);
        assert_eq!(tx.capacity(), 7);
    }

    #[test]
    fn push_slice_takes_what_fits() {
        let (mut tx, mut rx) = spsc_channel::<u32>(4);
        assert_eq!(tx.push_slice(&[1, 2, 3, 4, 5, 6]), Ok(4));
        assert_eq!(rx.pop(), Ok(1));
        assert_eq!(tx.push_slice(&[5]), Ok(1));
        let mut out = Vec::new();
        assert_eq!(rx.pop_chunk(&mut out, 16), Ok(4));
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn pop_chunk_respects_max_and_reports_state() {
        let (mut tx, mut rx) = spsc_channel::<u32>(8);
        let mut out = Vec::new();
        assert_eq!(rx.pop_chunk(&mut out, 4), Err(PopState::Empty));
        tx.push_slice(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(rx.pop_chunk(&mut out, 2), Ok(2));
        assert_eq!(rx.pop_chunk(&mut out, 100), Ok(3));
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        drop(tx);
        assert_eq!(rx.pop_chunk(&mut out, 4), Err(PopState::Disconnected));
    }

    #[test]
    fn push_drain_moves_without_clone() {
        // Box<u32> is Clone, but the point is the drain semantics: taken
        // elements leave the vec, untaken ones stay.
        let (mut tx, mut rx) = spsc_channel::<Box<u32>>(2);
        let mut items = vec![Box::new(1), Box::new(2), Box::new(3)];
        assert_eq!(tx.push_drain(&mut items), Ok(2));
        assert_eq!(items, vec![Box::new(3)]);
        assert_eq!(rx.pop(), Ok(Box::new(1)));
        drop(rx);
        assert_eq!(tx.push_drain(&mut items), Err(PopState::Disconnected));
        assert_eq!(items.len(), 1);
    }

    #[test]
    fn bulk_ops_wrap_around() {
        // Odd capacity + partial batches so head/tail wrap mid-chunk many
        // times; the sequence must still come out exactly once, in order.
        let (mut tx, mut rx) = spsc_channel::<u64>(5);
        let mut next = 0u64;
        let mut expect = 0u64;
        for _ in 0..200 {
            let batch: Vec<u64> = (next..next + 3).collect();
            next += tx.push_slice(&batch).unwrap() as u64;
            let mut out = Vec::new();
            if rx.pop_chunk(&mut out, 2).is_ok() {
                for v in out {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            }
        }
        let mut rest = Vec::new();
        while rx.pop_chunk(&mut rest, 64).is_ok() {}
        for v in rest {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn bulk_cross_thread_transfer() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = spsc_channel::<u64>(256);
        let producer = std::thread::spawn(move || {
            let mut pending: Vec<u64> = (0..N).collect();
            let mut off = 0usize;
            while off < pending.len() {
                match tx.push_slice(&pending[off..(off + 64).min(pending.len())]) {
                    Ok(n) => off += n,
                    Err(_) => panic!("consumer vanished"),
                }
                if off == pending.len() {
                    pending.clear();
                }
            }
        });
        let mut out = Vec::with_capacity(64);
        let mut expect = 0u64;
        loop {
            out.clear();
            match rx.pop_chunk(&mut out, 64) {
                Ok(_) => {
                    for v in &out {
                        assert_eq!(*v, expect);
                        expect += 1;
                    }
                }
                Err(PopState::Empty) => std::hint::spin_loop(),
                Err(PopState::Disconnected) => break,
            }
        }
        assert_eq!(expect, N);
        producer.join().unwrap();
    }
}
