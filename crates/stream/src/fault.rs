//! Deterministic fault injection for modeled links.
//!
//! Everything the fault-tolerance layer must survive — lost frames,
//! latency spikes, a link going dark — can be provoked on demand by
//! arming a [`FaultSpec`] on a [`crate::link::LinkSender`]. Faults are
//! decided *at the sender*, per message, by a seed-driven RNG: the same
//! spec over the same send sequence makes the same decisions, so a
//! failing scenario reproduces by rerunning it (the same determinism
//! contract as the workload generators).
//!
//! Three failure shapes, composable in one spec:
//!
//! * **drops** — a per-message Bernoulli (`drop_prob`) plus an optional
//!   blackout window (`drop_window`, relative to arming) in which *every*
//!   message is lost. A dropped message is consumed and reported as sent
//!   — lossy-link semantics; the receiver just never sees it.
//! * **delay spikes** — with `delay_prob`, a message's modeled delivery
//!   time gets `delay_spike` added on top of the link's latency/bandwidth
//!   model (queueing in a congested switch).
//! * **cuts** — after `cut_after_msgs` sends and/or at `cut_at` (relative
//!   to arming), the link goes dark permanently: sends fail exactly like
//!   a receiver disconnect, which is how consumers already learn about
//!   teardown.
//!
//! What is deliberately *not* here: receiver-side faults (a drop is
//! indistinguishable from sender-side loss) and storage-AC crashes —
//! those are a control-flow switch on the component loop
//! (`anydb_core::replica`), not a link property.

use std::time::{Duration, Instant};

use anydb_common::metrics::RobustSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Declarative fault plan for one link direction. Disabled by default;
/// builder methods switch individual failure shapes on.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed for the per-message fault RNG.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Blackout window `[from, until)` relative to arming: every message
    /// sent inside it is dropped.
    pub drop_window: Option<(Duration, Duration)>,
    /// Probability a delivered message gets the spike added.
    pub delay_prob: f64,
    /// Extra modeled delivery delay for spiked messages.
    pub delay_spike: Duration,
    /// Permanently cut the link after this many send attempts.
    pub cut_after_msgs: Option<u64>,
    /// Permanently cut the link at this instant (relative to arming).
    pub cut_at: Option<Duration>,
}

impl FaultSpec {
    /// A spec that injects nothing (the identity plan to build from).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            drop_window: None,
            delay_prob: 0.0,
            delay_spike: Duration::ZERO,
            cut_after_msgs: None,
            cut_at: None,
        }
    }

    /// Drops each message independently with probability `p`.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Drops every message sent in `[from, until)` after arming.
    pub fn drop_window(mut self, from: Duration, until: Duration) -> Self {
        self.drop_window = Some((from, until));
        self
    }

    /// Adds `spike` to the modeled delivery time with probability `p`.
    pub fn delay(mut self, p: f64, spike: Duration) -> Self {
        self.delay_prob = p;
        self.delay_spike = spike;
        self
    }

    /// Cuts the link permanently after `n` send attempts.
    pub fn cut_after_msgs(mut self, n: u64) -> Self {
        self.cut_after_msgs = Some(n);
        self
    }

    /// Cuts the link permanently `at` after arming.
    pub fn cut_at(mut self, at: Duration) -> Self {
        self.cut_at = Some(at);
        self
    }

    /// True if the spec ever needs a clock (pure-probability specs skip
    /// `Instant::now` on the send path).
    fn needs_clock(&self) -> bool {
        self.drop_window.is_some() || self.cut_at.is_some()
    }
}

/// What the armed fault state decided for one send attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver, with this much injected extra delay (usually zero).
    Deliver(Duration),
    /// Silently consume the message (lossy link).
    Drop,
    /// The link is dark: fail the send like a disconnect.
    Cut,
}

/// Counters of what an armed spec actually did (read back by tests and
/// scenario audits via [`crate::link::LinkSender::fault_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages that went through (possibly delayed).
    pub delivered: u64,
    /// Messages silently dropped.
    pub dropped: u64,
    /// Delivered messages that got the delay spike.
    pub delayed: u64,
    /// Send attempts refused because the link was cut.
    pub refused: u64,
}

impl FaultStats {
    /// This link direction's contribution to the unified robustness
    /// snapshot (see [`RobustSnapshot::merge`]).
    pub fn snapshot(&self) -> RobustSnapshot {
        RobustSnapshot {
            frames_delivered: self.delivered,
            frames_dropped: self.dropped,
            frames_delayed: self.delayed,
            sends_refused: self.refused,
            ..Default::default()
        }
    }
}

/// The armed, stateful form of a [`FaultSpec`].
pub struct FaultState {
    spec: FaultSpec,
    rng: StdRng,
    armed_at: Option<Instant>,
    sends: u64,
    cut: bool,
    stats: FaultStats,
}

impl FaultState {
    /// Arms `spec`. The clock (for windows/timed cuts) starts now.
    pub fn new(spec: FaultSpec) -> Self {
        let armed_at = spec.needs_clock().then(Instant::now);
        Self {
            rng: StdRng::seed_from_u64(spec.seed),
            spec,
            armed_at,
            sends: 0,
            cut: false,
            stats: FaultStats::default(),
        }
    }

    /// Decides the fate of the next message. Called once per send
    /// attempt; the decision sequence is a pure function of the spec and
    /// the attempt index (plus wall position for windowed shapes).
    pub fn decide(&mut self) -> FaultAction {
        self.sends += 1;
        if !self.cut {
            if let Some(n) = self.spec.cut_after_msgs {
                if self.sends > n {
                    self.cut = true;
                }
            }
        }
        let since_armed = self.armed_at.map(|t| t.elapsed());
        if !self.cut {
            if let (Some(at), Some(since)) = (self.spec.cut_at, since_armed) {
                if since >= at {
                    self.cut = true;
                }
            }
        }
        if self.cut {
            self.stats.refused += 1;
            return FaultAction::Cut;
        }
        // Draw the Bernoullis unconditionally so the decision sequence
        // does not depend on whether a window was active at the time.
        let dropped = self.spec.drop_prob > 0.0 && self.rng.random_bool(self.spec.drop_prob);
        let delayed = self.spec.delay_prob > 0.0 && self.rng.random_bool(self.spec.delay_prob);
        let in_window = match (self.spec.drop_window, since_armed) {
            (Some((from, until)), Some(since)) => since >= from && since < until,
            _ => false,
        };
        if dropped || in_window {
            self.stats.dropped += 1;
            return FaultAction::Drop;
        }
        self.stats.delivered += 1;
        if delayed {
            self.stats.delayed += 1;
            FaultAction::Deliver(self.spec.delay_spike)
        } else {
            FaultAction::Deliver(Duration::ZERO)
        }
    }

    /// What the armed spec has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// True once a cut has fired.
    pub fn is_cut(&self) -> bool {
        self.cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(spec: FaultSpec, n: usize) -> Vec<FaultAction> {
        let mut st = FaultState::new(spec);
        (0..n).map(|_| st.decide()).collect()
    }

    #[test]
    fn no_faults_by_default() {
        let got = decisions(FaultSpec::new(1), 100);
        assert!(got
            .iter()
            .all(|a| *a == FaultAction::Deliver(Duration::ZERO)));
    }

    #[test]
    fn drop_decisions_are_deterministic_per_seed() {
        let a = decisions(FaultSpec::new(42).drop_prob(0.3), 200);
        let b = decisions(FaultSpec::new(42).drop_prob(0.3), 200);
        assert_eq!(a, b);
        let c = decisions(FaultSpec::new(43).drop_prob(0.3), 200);
        assert_ne!(a, c, "different seeds should differ somewhere");
        let dropped = a.iter().filter(|x| **x == FaultAction::Drop).count();
        assert!((20..=120).contains(&dropped), "p=0.3 of 200: {dropped}");
    }

    #[test]
    fn delay_spikes_ride_on_deliveries() {
        let spike = Duration::from_millis(5);
        let got = decisions(FaultSpec::new(7).delay(0.5, spike), 100);
        let spiked = got
            .iter()
            .filter(|a| **a == FaultAction::Deliver(spike))
            .count();
        assert!(spiked > 10, "p=0.5 of 100 spiked only {spiked}");
        assert!(got.iter().all(|a| !matches!(a, FaultAction::Drop)));
    }

    #[test]
    fn cut_after_msgs_is_permanent() {
        let mut st = FaultState::new(FaultSpec::new(1).cut_after_msgs(3));
        for _ in 0..3 {
            assert!(matches!(st.decide(), FaultAction::Deliver(_)));
        }
        for _ in 0..5 {
            assert_eq!(st.decide(), FaultAction::Cut);
        }
        assert!(st.is_cut());
        assert_eq!(st.stats().delivered, 3);
        assert_eq!(st.stats().refused, 5);
    }

    #[test]
    fn drop_window_blacks_out_everything_inside() {
        let mut st = FaultState::new(
            FaultSpec::new(1).drop_window(Duration::ZERO, Duration::from_millis(20)),
        );
        assert_eq!(st.decide(), FaultAction::Drop);
        std::thread::sleep(Duration::from_millis(25));
        assert!(matches!(st.decide(), FaultAction::Deliver(_)));
        assert_eq!(st.stats().dropped, 1);
        assert_eq!(st.stats().delivered, 1);
    }

    #[test]
    fn cut_at_fires_on_the_clock() {
        let mut st = FaultState::new(FaultSpec::new(1).cut_at(Duration::from_millis(10)));
        assert!(matches!(st.decide(), FaultAction::Deliver(_)));
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(st.decide(), FaultAction::Cut);
    }
}
