//! Link classes and the simulated server topology.
//!
//! The paper's testbed is two 4-core servers connected by InfiniBand with
//! DPI flow offload; local beaming uses shared-memory queues to hide NUMA
//! latencies. We model exactly those transport classes (constants chosen to
//! be representative, see DESIGN.md §2) and a [`Topology`] that says which
//! class connects any two ACs given their server placement.

use std::time::Duration;

use anydb_common::{AcId, ServerId};

use crate::link::LinkSpec;

/// Transport classes between ACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Same socket, shared memory: effectively free (modeled as instant so
    /// OLTP paths avoid clock reads).
    SharedMemory,
    /// Cross-NUMA shared-memory queue: sub-microsecond latency, high
    /// bandwidth.
    Numa,
    /// InfiniBand with DPI flow offload: microsecond latency, ~12 GB/s,
    /// and `offload = true` — flows process data "on the NIC" for free.
    DpiFlow,
    /// Plain datacenter TCP: tens of microseconds, ~1 GB/s, no offload.
    Tcp,
}

impl LinkClass {
    /// The delivery-model constants for this class.
    pub fn spec(self) -> LinkSpec {
        match self {
            LinkClass::SharedMemory => LinkSpec::instant(),
            LinkClass::Numa => LinkSpec {
                latency: Duration::from_nanos(400),
                bytes_per_sec: 20e9,
                offload: false,
            },
            LinkClass::DpiFlow => LinkSpec {
                latency: Duration::from_micros(2),
                bytes_per_sec: 12e9,
                offload: true,
            },
            LinkClass::Tcp => LinkSpec {
                latency: Duration::from_micros(50),
                bytes_per_sec: 1.2e9,
                offload: false,
            },
        }
    }
}

/// Placement of ACs onto simulated servers and the transport classes
/// connecting them.
///
/// Figure 3 of the paper shows the same AnyDB acting shared-nothing on two
/// servers or disaggregated across four; the topology is what makes
/// "remote" meaningful in those experiments.
#[derive(Debug, Clone)]
pub struct Topology {
    /// `placement[ac] = server`.
    placement: Vec<ServerId>,
    /// Cores per server (capacity accounting for experiments).
    cores: Vec<u32>,
    /// Class used between distinct servers.
    inter_server: LinkClass,
    /// Class used within one server.
    intra_server: LinkClass,
}

impl Topology {
    /// Builds a topology for `servers` servers with `cores` cores each and
    /// no ACs placed yet.
    pub fn new(servers: u32, cores: u32, inter_server: LinkClass) -> Self {
        Self {
            placement: Vec::new(),
            cores: vec![cores; servers as usize],
            inter_server,
            intra_server: LinkClass::SharedMemory,
        }
    }

    /// Overrides the intra-server class (e.g. `Numa` to model cross-socket
    /// queues, as in Figure 6's "aggregated" variant).
    pub fn with_intra_server(mut self, class: LinkClass) -> Self {
        self.intra_server = class;
        self
    }

    /// Places the next AC on `server`, returning its id.
    ///
    /// # Panics
    /// Panics if the server does not exist.
    pub fn place_ac(&mut self, server: ServerId) -> AcId {
        assert!(server.index() < self.cores.len(), "unknown server {server}");
        let id = AcId(self.placement.len() as u32);
        self.placement.push(server);
        id
    }

    /// Adds a new server with `cores` cores (elasticity: the paper adds
    /// "servers with additional ACs" under load). Returns its id.
    pub fn add_server(&mut self, cores: u32) -> ServerId {
        let id = ServerId(self.cores.len() as u32);
        self.cores.push(cores);
        id
    }

    /// Number of ACs placed.
    pub fn ac_count(&self) -> usize {
        self.placement.len()
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.cores.len()
    }

    /// The server hosting `ac`.
    pub fn server_of(&self, ac: AcId) -> ServerId {
        self.placement[ac.index()]
    }

    /// Cores on `server`.
    pub fn cores_of(&self, server: ServerId) -> u32 {
        self.cores[server.index()]
    }

    /// The link class connecting two ACs.
    pub fn link_class(&self, from: AcId, to: AcId) -> LinkClass {
        if self.server_of(from) == self.server_of(to) {
            self.intra_server
        } else {
            self.inter_server
        }
    }

    /// The link spec connecting two ACs.
    pub fn link_spec(&self, from: AcId, to: AcId) -> LinkSpec {
        self.link_class(from, to).spec()
    }

    /// All ACs placed on `server`.
    pub fn acs_on(&self, server: ServerId) -> Vec<AcId> {
        self.placement
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == server)
            .map(|(i, _)| AcId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_specs_are_ordered_by_cost() {
        let shm = LinkClass::SharedMemory.spec();
        let numa = LinkClass::Numa.spec();
        let dpi = LinkClass::DpiFlow.spec();
        let tcp = LinkClass::Tcp.spec();
        assert!(shm.is_instant());
        assert!(numa.latency < dpi.latency);
        assert!(dpi.latency < tcp.latency);
        assert!(dpi.bytes_per_sec > tcp.bytes_per_sec);
        assert!(dpi.offload);
        assert!(!tcp.offload);
    }

    #[test]
    fn placement_and_link_classes() {
        let mut topo = Topology::new(2, 4, LinkClass::DpiFlow);
        let a = topo.place_ac(ServerId(0));
        let b = topo.place_ac(ServerId(0));
        let c = topo.place_ac(ServerId(1));
        assert_eq!(topo.link_class(a, b), LinkClass::SharedMemory);
        assert_eq!(topo.link_class(a, c), LinkClass::DpiFlow);
        assert_eq!(topo.ac_count(), 3);
        assert_eq!(topo.server_of(c), ServerId(1));
    }

    #[test]
    fn intra_server_override() {
        let mut topo = Topology::new(1, 4, LinkClass::Tcp).with_intra_server(LinkClass::Numa);
        let a = topo.place_ac(ServerId(0));
        let b = topo.place_ac(ServerId(0));
        assert_eq!(topo.link_class(a, b), LinkClass::Numa);
    }

    #[test]
    fn elastic_server_addition() {
        let mut topo = Topology::new(1, 4, LinkClass::DpiFlow);
        let a = topo.place_ac(ServerId(0));
        let s2 = topo.add_server(4);
        let b = topo.place_ac(s2);
        assert_eq!(topo.server_count(), 2);
        assert_eq!(topo.link_class(a, b), LinkClass::DpiFlow);
        assert_eq!(topo.cores_of(s2), 4);
    }

    #[test]
    fn acs_on_lists_per_server() {
        let mut topo = Topology::new(2, 4, LinkClass::Tcp);
        let a = topo.place_ac(ServerId(0));
        let _b = topo.place_ac(ServerId(1));
        let c = topo.place_ac(ServerId(0));
        assert_eq!(topo.acs_on(ServerId(0)), vec![a, c]);
    }

    #[test]
    #[should_panic(expected = "unknown server")]
    fn placing_on_missing_server_panics() {
        let mut topo = Topology::new(1, 4, LinkClass::Tcp);
        topo.place_ac(ServerId(5));
    }
}
