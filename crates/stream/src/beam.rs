//! Data beams: data streams initiated before their consuming events exist.
//!
//! §2.3/§4 of the paper: "in DBMS execution one often knows which data is
//! accessed way ahead of time … AnyDB initiates data streams as early as
//! possible. Once initiated, a data stream actively pushes data to the AC
//! where, for example, a filter operator will be executed once query
//! optimization finished."
//!
//! Mechanically, a beam is the receiving half of a link carrying
//! [`Batch`]es, registered under a [`BeamId`] by whoever initiates the
//! stream (the QO, at query admission). The operator event that eventually
//! executes carries the id and *attaches* to the beam via
//! [`BeamRegistry::take`] — by which point the data is typically already
//! buffered locally, hiding the transfer entirely.

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::fxmap::FxHashMap;
use parking_lot::Mutex;

use crate::batch::Batch;
use crate::link::LinkReceiver;

/// Identifies one beamed data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BeamId(pub u64);

/// Allocates unique beam ids.
#[derive(Debug, Default)]
pub struct BeamIdGen {
    next: AtomicU64,
}

impl BeamIdGen {
    /// New generator starting at zero.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Allocates the next id.
    pub fn next(&self) -> BeamId {
        BeamId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Where consumers pick up the receiving ends of initiated beams.
///
/// The registry is the rendezvous between the QO (which initiates beams
/// during/before query compilation) and the ACs that later execute the
/// consuming operators. Registration always happens before the consuming
/// event is dispatched, so `take` never races with `register` for the same
/// id in correct usage; `take` returning `None` means the beam was already
/// claimed (a routing bug) or never initiated (a planning bug).
#[derive(Default)]
pub struct BeamRegistry {
    slots: Mutex<FxHashMap<BeamId, LinkReceiver<Batch>>>,
}

impl BeamRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the receiving end of a beam.
    ///
    /// # Panics
    /// Panics if the id is already registered — beam ids are unique by
    /// construction, so a duplicate is a bug worth failing loudly on.
    pub fn register(&self, id: BeamId, rx: LinkReceiver<Batch>) {
        let prev = self.slots.lock().insert(id, rx);
        assert!(prev.is_none(), "beam {id:?} registered twice");
    }

    /// Claims the receiving end of a beam (each beam has one consumer).
    pub fn take(&self, id: BeamId) -> Option<LinkReceiver<Batch>> {
        self.slots.lock().remove(&id)
    }

    /// Number of currently unclaimed beams.
    pub fn pending(&self) -> usize {
        self.slots.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkSpec, SimLink};
    use anydb_common::{Tuple, Value};

    #[test]
    fn idgen_is_unique() {
        let g = BeamIdGen::new();
        let a = g.next();
        let b = g.next();
        assert_ne!(a, b);
    }

    #[test]
    fn register_then_take() {
        let reg = BeamRegistry::new();
        let (_tx, rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        reg.register(BeamId(1), rx);
        assert_eq!(reg.pending(), 1);
        assert!(reg.take(BeamId(1)).is_some());
        assert!(reg.take(BeamId(1)).is_none());
        assert_eq!(reg.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let reg = BeamRegistry::new();
        let (_tx1, rx1) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        let (_tx2, rx2) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        reg.register(BeamId(1), rx1);
        reg.register(BeamId(1), rx2);
    }

    #[test]
    fn beamed_data_is_buffered_before_attach() {
        // The whole point of beaming: by the time the consumer attaches,
        // data already sits in the local ring.
        let reg = BeamRegistry::new();
        let (mut tx, rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 16);
        reg.register(BeamId(9), rx);
        for i in 0..5 {
            let b = Batch::new(vec![Tuple::new(vec![Value::Int(i)])]);
            let bytes = b.bytes();
            tx.send(b, bytes).unwrap();
        }
        drop(tx);
        let mut rx = reg.take(BeamId(9)).unwrap();
        let mut total = 0;
        while let Some(b) = rx.recv_blocking() {
            total += b.len();
        }
        assert_eq!(total, 5);
    }
}
