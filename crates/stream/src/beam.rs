//! Data beams: data streams initiated before their consuming events exist.
//!
//! §2.3/§4 of the paper: "in DBMS execution one often knows which data is
//! accessed way ahead of time … AnyDB initiates data streams as early as
//! possible. Once initiated, a data stream actively pushes data to the AC
//! where, for example, a filter operator will be executed once query
//! optimization finished."
//!
//! Mechanically, a beam is the receiving half of a link carrying
//! [`Batch`]es, registered under a [`BeamId`] by whoever initiates the
//! stream (the QO, at query admission). The operator event that eventually
//! executes carries the id and *attaches* to the beam via
//! [`BeamRegistry::take`] — by which point the data is typically already
//! buffered locally, hiding the transfer entirely.

use std::sync::atomic::{AtomicU64, Ordering};

use anydb_common::fxmap::FxHashMap;
use parking_lot::Mutex;

use crate::batch::Batch;
use crate::link::LinkReceiver;

/// Identifies one beamed data stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BeamId(pub u64);

/// Allocates unique beam ids.
#[derive(Debug, Default)]
pub struct BeamIdGen {
    next: AtomicU64,
}

impl BeamIdGen {
    /// New generator starting at zero.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Allocates the next id.
    pub fn next(&self) -> BeamId {
        BeamId(self.next.fetch_add(1, Ordering::Relaxed))
    }
}

/// Where consumers pick up the receiving ends of initiated beams.
///
/// The registry is the rendezvous between the QO (which initiates beams
/// during/before query compilation) and the ACs that later execute the
/// consuming operators. Registration always happens before the consuming
/// event is dispatched, so `take` never races with `register` for the same
/// id in correct usage; `take` returning `None` means the beam was already
/// claimed (a routing bug) or never initiated (a planning bug).
///
/// Generic over the stream payload: row [`Batch`]es (the default) or
/// columnar `ColumnBatch`es, matching whichever representation the scan
/// producer ships.
pub struct BeamRegistry<T = Batch> {
    slots: Mutex<FxHashMap<BeamId, LinkReceiver<T>>>,
}

impl<T> Default for BeamRegistry<T> {
    fn default() -> Self {
        Self {
            slots: Mutex::new(FxHashMap::default()),
        }
    }
}

impl<T> BeamRegistry<T> {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the receiving end of a beam.
    ///
    /// # Panics
    /// Panics if the id is already registered — beam ids are unique by
    /// construction, so a duplicate is a bug worth failing loudly on.
    pub fn register(&self, id: BeamId, rx: LinkReceiver<T>) {
        let prev = self.slots.lock().insert(id, rx);
        assert!(prev.is_none(), "beam {id:?} registered twice");
    }

    /// Claims the receiving end of a beam (each beam has one consumer).
    pub fn take(&self, id: BeamId) -> Option<LinkReceiver<T>> {
        self.slots.lock().remove(&id)
    }

    /// Number of currently unclaimed beams.
    pub fn pending(&self) -> usize {
        self.slots.lock().len()
    }
}

impl BeamRegistry<Batch> {
    /// Claims a beam wrapped in a batch-draining [`BeamReader`].
    pub fn attach(&self, id: BeamId) -> Option<BeamReader> {
        self.take(id).map(BeamReader::new)
    }
}

/// Batch-amortized consumer of one beam.
///
/// Wraps the beam's link receiver so consumption happens in chunks: a
/// refill pulls every already-delivered batch off the ring with a single
/// clock read ([`LinkReceiver::drain_ready_max`]) and hands them out one
/// by one from local staging — the receiving mirror of the bulk send path.
pub struct BeamReader {
    rx: LinkReceiver<Batch>,
    staged: std::collections::VecDeque<Batch>,
    /// Reused across refills so an empty drain attempt costs no
    /// allocation (the common case when the producer is the slower side).
    refill: Vec<Batch>,
}

impl BeamReader {
    /// Chunk size of one staging refill; bounds local buffering.
    const REFILL: usize = 64;

    /// Wraps a claimed beam receiver.
    pub fn new(rx: LinkReceiver<Batch>) -> Self {
        Self {
            rx,
            staged: std::collections::VecDeque::new(),
            refill: Vec::new(),
        }
    }

    /// Next batch, blocking until one is delivered; `None` once the
    /// producer is gone and everything was consumed.
    pub fn next_batch(&mut self) -> Option<Batch> {
        if let Some(b) = self.staged.pop_front() {
            return Some(b);
        }
        if self.rx.drain_ready_max(&mut self.refill, Self::REFILL) > 0 {
            self.staged.extend(self.refill.drain(..));
            return self.staged.pop_front();
        }
        // Nothing deliverable yet: fall back to the waiting receive.
        self.rx.recv_blocking()
    }

    /// Drains the whole beam into a tuple vector; returns the tuple count.
    pub fn drain_tuples(&mut self, out: &mut Vec<anydb_common::Tuple>) -> usize {
        let mut n = 0;
        while let Some(batch) = self.next_batch() {
            n += batch.len();
            out.extend(batch.into_tuples());
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkSpec, SimLink};
    use anydb_common::{Tuple, Value};

    #[test]
    fn idgen_is_unique() {
        let g = BeamIdGen::new();
        let a = g.next();
        let b = g.next();
        assert_ne!(a, b);
    }

    #[test]
    fn register_then_take() {
        let reg = BeamRegistry::new();
        let (_tx, rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        reg.register(BeamId(1), rx);
        assert_eq!(reg.pending(), 1);
        assert!(reg.take(BeamId(1)).is_some());
        assert!(reg.take(BeamId(1)).is_none());
        assert_eq!(reg.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let reg = BeamRegistry::new();
        let (_tx1, rx1) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        let (_tx2, rx2) = SimLink::channel::<Batch>(LinkSpec::instant(), 4);
        reg.register(BeamId(1), rx1);
        reg.register(BeamId(1), rx2);
    }

    #[test]
    fn beamed_data_is_buffered_before_attach() {
        // The whole point of beaming: by the time the consumer attaches,
        // data already sits in the local ring.
        let reg = BeamRegistry::new();
        let (mut tx, rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 16);
        reg.register(BeamId(9), rx);
        for i in 0..5 {
            let b = Batch::new(vec![Tuple::new(vec![Value::Int(i)])]);
            let bytes = b.bytes();
            tx.send(b, bytes).unwrap();
        }
        drop(tx);
        let mut rx = reg.take(BeamId(9)).unwrap();
        let mut total = 0;
        while let Some(b) = rx.recv_blocking() {
            total += b.len();
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn beam_reader_drains_bulk_sent_batches() {
        let reg = BeamRegistry::new();
        let (mut tx, rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 256);
        reg.register(BeamId(3), rx);
        let batches: Vec<Batch> = (0..100)
            .map(|i| Batch::new(vec![Tuple::new(vec![Value::Int(i)])]))
            .collect();
        let bytes = batches.iter().map(Batch::bytes).sum();
        tx.send_many_blocking(batches, bytes).unwrap();
        drop(tx);
        let mut reader = reg.attach(BeamId(3)).unwrap();
        let mut tuples = Vec::new();
        assert_eq!(reader.drain_tuples(&mut tuples), 100);
        let got: Vec<i64> = tuples.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
