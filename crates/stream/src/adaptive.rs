//! Depth-driven batch sizing.
//!
//! Static batch sizes force a single throughput/latency trade-off on every
//! workload phase — exactly the fixed-architecture thinking the paper
//! argues against. [`AdaptiveBatch`] sizes event batches *online* from the
//! backlog the streams already mirror ([`crate::inbox::Inbox::len`], the
//! SPSC ring's occupancy): when a queue is deep, one more event per batch
//! costs nothing extra in latency (everything behind it waits anyway) and
//! buys amortization, so the batch grows; when the queue runs empty, any
//! held-back event is pure queueing delay, so the batch shrinks toward
//! one. This is the SEDA/morsel-style feedback loop: queue depth is the
//! control signal, batch size the actuator.
//!
//! The controller is multiplicative in both directions (double on backlog,
//! halve on idle), so it spans its whole `[min, max]` range in
//! `log2(max/min)` observations — fast enough to follow workload phase
//! changes measured in tens of events, while the hold band (`0 < depth <
//! current`) keeps it from oscillating on a half-full queue.

/// Online batch-size controller fed by observed queue depth.
///
/// `observe` is called once per batch boundary (a driver about to group
/// events, an AC about to drain its inbox) with the depth of the queue in
/// question; `current` is the batch size to use for the next transfer.
/// With `min == max` the controller is pinned — the static modes of the
/// ablation — and `observe` becomes a no-op.
#[derive(Debug, Clone)]
pub struct AdaptiveBatch {
    min: usize,
    max: usize,
    cur: usize,
    /// p99 queueing-delay budget in nanoseconds (the SLO mode); `None`
    /// for depth-only controllers.
    slo_ns: Option<u64>,
}

impl AdaptiveBatch {
    /// Controller ranging over `[min, max]`, starting at `min` (an idle
    /// system should begin at the latency end of the knob).
    ///
    /// # Panics
    /// Panics unless `1 <= min <= max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(min >= 1, "batch size must be positive");
        assert!(min <= max, "adaptive range inverted: {min} > {max}");
        Self {
            min,
            max,
            cur: min,
            slo_ns: None,
        }
    }

    /// A latency-target controller: same `[min, max]` range, but callers
    /// that can measure delay steer it through [`observe_delay`] against a
    /// p99 queueing-delay `budget` — grow the batch while latency is
    /// comfortably inside the budget, shrink the moment it is blown.
    /// Depth observations ([`observe`]) still work, so the same controller
    /// serves consumers that only see backlog (the AC drain loop).
    ///
    /// [`observe`]: AdaptiveBatch::observe
    /// [`observe_delay`]: AdaptiveBatch::observe_delay
    pub fn with_slo(min: usize, max: usize, budget: std::time::Duration) -> Self {
        let mut c = Self::new(min, max);
        c.slo_ns = Some(budget.as_nanos().min(u64::MAX as u128) as u64);
        c
    }

    /// A pinned controller: `current` is always `n` (static batching).
    pub fn fixed(n: usize) -> Self {
        Self::new(n, n)
    }

    /// The batch size to use for the next transfer.
    #[inline]
    pub fn current(&self) -> usize {
        self.cur
    }

    /// Lower bound of the range.
    pub fn min(&self) -> usize {
        self.min
    }

    /// Upper bound of the range (what callers should pre-allocate for).
    pub fn max(&self) -> usize {
        self.max
    }

    /// True if the controller can actually move (`min != max`).
    pub fn is_adaptive(&self) -> bool {
        self.min != self.max
    }

    /// Feeds one queue-depth sample and returns the adjusted batch size.
    ///
    /// * `depth >= current`: at least one full batch is already waiting —
    ///   grow (double, capped at `max`).
    /// * `depth == 0`: the queue drained — shrink (halve, floored at
    ///   `min`) so a lone event is not held hostage by a big threshold.
    /// * otherwise: hold, to avoid oscillating around a half-full queue.
    #[inline]
    pub fn observe(&mut self, depth: usize) -> usize {
        if depth >= self.cur {
            self.cur = (self.cur * 2).min(self.max);
        } else if depth == 0 {
            self.cur = (self.cur / 2).max(self.min);
        }
        self.cur
    }

    /// The p99 queueing-delay budget, when this controller has one.
    pub fn slo(&self) -> Option<std::time::Duration> {
        self.slo_ns.map(std::time::Duration::from_nanos)
    }

    /// Feeds one measured p99 queueing delay and returns the adjusted
    /// batch size. A no-op on controllers without an SLO budget.
    ///
    /// * `p99 > budget`: the target is blown — shrink (halve, floored at
    ///   `min`) to shed queueing delay immediately.
    /// * `p99 <= budget / 2`: comfortably inside the target — grow
    ///   (double, capped at `max`) and spend the slack on amortization.
    /// * otherwise: hold — the half-budget deadband keeps the controller
    ///   from oscillating right at the target.
    #[inline]
    pub fn observe_delay(&mut self, p99: std::time::Duration) -> usize {
        let Some(budget) = self.slo_ns else {
            return self.cur;
        };
        let p99 = p99.as_nanos().min(u64::MAX as u128) as u64;
        if p99 > budget {
            self.cur = (self.cur / 2).max(self.min);
        } else if p99 <= budget / 2 {
            self.cur = (self.cur * 2).min(self.max);
        }
        self.cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_under_backlog_up_to_max() {
        let mut c = AdaptiveBatch::new(1, 64);
        for _ in 0..20 {
            c.observe(1 << 20);
        }
        assert_eq!(c.current(), 64);
    }

    #[test]
    fn decays_to_min_when_idle() {
        let mut c = AdaptiveBatch::new(1, 64);
        for _ in 0..10 {
            c.observe(usize::MAX);
        }
        assert_eq!(c.current(), 64);
        for _ in 0..10 {
            c.observe(0);
        }
        assert_eq!(c.current(), 1);
    }

    #[test]
    fn holds_in_the_band() {
        let mut c = AdaptiveBatch::new(1, 64);
        c.observe(100);
        c.observe(100);
        c.observe(100);
        let level = c.current();
        assert!(level > 1);
        // depth strictly between 0 and current: no movement.
        c.observe(level - 1);
        assert_eq!(c.current(), level);
    }

    #[test]
    fn fixed_never_moves() {
        let mut c = AdaptiveBatch::fixed(8);
        assert!(!c.is_adaptive());
        c.observe(0);
        assert_eq!(c.current(), 8);
        c.observe(usize::MAX);
        assert_eq!(c.current(), 8);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        AdaptiveBatch::new(9, 3);
    }

    #[test]
    fn slo_grows_within_budget_and_respects_max() {
        use std::time::Duration;
        let mut c = AdaptiveBatch::with_slo(1, 64, Duration::from_millis(1));
        assert_eq!(c.slo(), Some(Duration::from_millis(1)));
        // Comfortably inside the budget: grow toward max, never past it.
        for _ in 0..20 {
            c.observe_delay(Duration::from_micros(100));
        }
        assert_eq!(c.current(), 64);
    }

    #[test]
    fn slo_sheds_batch_when_budget_blown() {
        use std::time::Duration;
        let mut c = AdaptiveBatch::with_slo(1, 64, Duration::from_millis(1));
        for _ in 0..10 {
            c.observe_delay(Duration::from_micros(10));
        }
        assert_eq!(c.current(), 64);
        // Budget blown: shrink all the way back to min, never below.
        for _ in 0..10 {
            c.observe_delay(Duration::from_millis(5));
        }
        assert_eq!(c.current(), 1);
    }

    #[test]
    fn slo_holds_in_the_deadband() {
        use std::time::Duration;
        let mut c = AdaptiveBatch::with_slo(1, 64, Duration::from_millis(1));
        c.observe_delay(Duration::from_micros(10));
        c.observe_delay(Duration::from_micros(10));
        let level = c.current();
        assert!(level > 1);
        // Between budget/2 and budget: no movement either way.
        c.observe_delay(Duration::from_micros(800));
        assert_eq!(c.current(), level);
    }

    #[test]
    fn delay_observations_are_noops_without_slo() {
        use std::time::Duration;
        let mut c = AdaptiveBatch::new(1, 64);
        assert_eq!(c.slo(), None);
        c.observe_delay(Duration::from_micros(1));
        assert_eq!(c.current(), 1);
        c.observe(usize::MAX);
        let level = c.current();
        c.observe_delay(Duration::from_secs(10));
        assert_eq!(c.current(), level);
    }
}
