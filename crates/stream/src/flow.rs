//! DPI-style flows: stream transformations applied *en route*.
//!
//! The paper (§4, Figure 6) observes that with DPI [1] the network itself
//! acts as a co-processor: data beams across InfiniBand arrive pre-filtered
//! and pre-placed, making the disaggregated architecture *faster* than the
//! aggregated one. A [`Flow`] is an ordered list of relational stages
//! (filter, project) applied to every batch a [`FlowSender`] ships.
//!
//! Cost model: on an `offload` link (see [`crate::link::LinkSpec`]) the
//! stage CPU time is charged to nobody — the NIC does it. On a non-offload
//! link the sending thread pays for the processing, which is exactly what
//! happens when it executes the closure.

use std::sync::Arc;

use anydb_common::{ColPredicate, ColumnBatch, DbError, DbResult, Tuple};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::batch::Batch;
use crate::link::LinkSender;
use crate::spsc::PushError;

/// Wire tag of a [`FlowStage::FilterCol`] stage.
const FLOW_FILTER_COL: u8 = 1;
/// Wire tag of a [`FlowStage::Project`] stage.
const FLOW_PROJECT: u8 = 2;

/// One transformation stage.
#[derive(Clone)]
pub enum FlowStage {
    /// Keep only tuples matching an opaque row predicate. Works on both
    /// batch representations, but a columnar batch must materialize a
    /// scratch tuple per row to ask it — prefer [`FlowStage::FilterCol`]
    /// for anything hot.
    Filter(Arc<dyn Fn(&Tuple) -> bool + Send + Sync>),
    /// Keep only rows matching a columnar predicate: evaluated vectorized
    /// into a selection vector on column batches, per-row on tuple
    /// batches. This is also the form a scan can push down (see
    /// `anydb_storage`'s `scan_columns`).
    FilterCol(ColPredicate),
    /// Project onto the given column indices (per-column copy on columnar
    /// batches, per-tuple rebuild on row batches).
    Project(Vec<usize>),
}

impl std::fmt::Debug for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowStage::Filter(_) => write!(f, "Filter(..)"),
            FlowStage::FilterCol(p) => write!(f, "FilterCol({p:?})"),
            FlowStage::Project(cols) => write!(f, "Project({cols:?})"),
        }
    }
}

/// An ordered pipeline of stages.
#[derive(Clone, Debug, Default)]
pub struct Flow {
    stages: Vec<FlowStage>,
}

impl Flow {
    /// The identity flow (ships batches unchanged).
    pub fn identity() -> Self {
        Self::default()
    }

    /// Appends a filter stage over an opaque row predicate.
    pub fn filter(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.stages.push(FlowStage::Filter(Arc::new(pred)));
        self
    }

    /// Appends a columnar (vectorizable) filter stage.
    pub fn filter_col(mut self, pred: ColPredicate) -> Self {
        self.stages.push(FlowStage::FilterCol(pred));
        self
    }

    /// Appends a projection stage.
    pub fn project(mut self, cols: Vec<usize>) -> Self {
        self.stages.push(FlowStage::Project(cols));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True for the identity flow.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages, in application order.
    pub fn stages(&self) -> &[FlowStage] {
        &self.stages
    }

    /// Encodes the flow spec for the wire (DESIGN.md §8): a u16 stage
    /// count, then one tagged stage each — `FilterCol` through the
    /// [`ColPredicate`] codec, `Project` as a u16-counted list of u32
    /// column positions.
    ///
    /// Only the relational stages are wire-encodable; an opaque
    /// [`FlowStage::Filter`] closure has no serial form and is an error —
    /// the caller chose a stage a remote NIC cannot run.
    pub fn encode_into(&self, buf: &mut BytesMut) -> DbResult<()> {
        debug_assert!(self.stages.len() <= u16::MAX as usize);
        buf.put_u16(self.stages.len() as u16);
        for stage in &self.stages {
            match stage {
                FlowStage::Filter(_) => {
                    return Err(DbError::Codec("opaque row filter is not wire-encodable"));
                }
                FlowStage::FilterCol(pred) => {
                    buf.put_u8(FLOW_FILTER_COL);
                    pred.encode_into(buf);
                }
                FlowStage::Project(cols) => {
                    debug_assert!(cols.len() <= u16::MAX as usize);
                    buf.put_u8(FLOW_PROJECT);
                    buf.put_u16(cols.len() as u16);
                    for &c in cols {
                        buf.put_u32(c as u32);
                    }
                }
            }
        }
        Ok(())
    }

    /// Encodes into a fresh buffer.
    pub fn encode(&self) -> DbResult<Bytes> {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf)?;
        Ok(buf.freeze())
    }

    /// Decodes one flow spec, advancing `buf` past the consumed bytes.
    /// Rejects truncation and unknown stage tags.
    pub fn decode_from(buf: &mut impl Buf) -> DbResult<Flow> {
        if buf.remaining() < 2 {
            return Err(DbError::Codec("flow stage count truncated"));
        }
        let n = buf.get_u16() as usize;
        let mut stages = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            if buf.remaining() < 1 {
                return Err(DbError::Codec("flow stage tag truncated"));
            }
            stages.push(match buf.get_u8() {
                FLOW_FILTER_COL => FlowStage::FilterCol(ColPredicate::decode_from(buf)?),
                FLOW_PROJECT => {
                    if buf.remaining() < 2 {
                        return Err(DbError::Codec("flow projection count truncated"));
                    }
                    let ncols = buf.get_u16() as usize;
                    if buf.remaining() < ncols * 4 {
                        return Err(DbError::Codec("flow projection truncated"));
                    }
                    FlowStage::Project((0..ncols).map(|_| buf.get_u32() as usize).collect())
                }
                _ => return Err(DbError::Codec("unknown flow stage tag")),
            });
        }
        Ok(Flow { stages })
    }

    /// Decodes from a standalone buffer (must be fully consumed).
    pub fn decode(bytes: &Bytes) -> DbResult<Flow> {
        let mut buf = bytes.clone();
        let flow = Self::decode_from(&mut buf)?;
        if buf.remaining() != 0 {
            return Err(DbError::Codec("trailing bytes after flow spec"));
        }
        Ok(flow)
    }

    /// Applies all stages to a row batch. The wire size is maintained
    /// incrementally across stages (subtracting dropped tuples, resizing
    /// projections as they are built) — never a second walk over the
    /// surviving tuples.
    pub fn apply(&self, batch: Batch) -> Batch {
        if self.stages.is_empty() {
            return batch;
        }
        let mut bytes = batch.bytes();
        let mut tuples = batch.into_tuples();
        for stage in &self.stages {
            match stage {
                FlowStage::Filter(pred) => tuples.retain(|t| {
                    let keep = pred(t);
                    if !keep {
                        bytes -= t.wire_size();
                    }
                    keep
                }),
                FlowStage::FilterCol(p) => tuples.retain(|t| {
                    let keep = p.matches_tuple(t);
                    if !keep {
                        bytes -= t.wire_size();
                    }
                    keep
                }),
                FlowStage::Project(cols) => {
                    bytes = 0;
                    for t in &mut tuples {
                        *t = t.project(cols);
                        bytes += t.wire_size();
                    }
                }
            }
        }
        Batch::with_bytes(tuples, bytes)
    }

    /// Applies all stages to a column batch: columnar filters run
    /// vectorized (selection vector + gather), projections copy whole
    /// columns, and only opaque row-closure filters fall back to a
    /// scratch tuple per row.
    pub fn apply_columns(&self, batch: ColumnBatch) -> ColumnBatch {
        let mut batch = batch;
        let mut sel: Vec<u32> = Vec::new();
        for stage in &self.stages {
            match stage {
                FlowStage::FilterCol(pred) => {
                    sel.clear();
                    pred.select(&batch, &mut sel);
                    if sel.len() != batch.rows() {
                        batch = batch.take(&sel);
                    }
                }
                FlowStage::Filter(pred) => {
                    sel.clear();
                    sel.extend(
                        (0..batch.rows())
                            .filter(|&i| pred(&batch.row_tuple(i)))
                            .map(|i| i as u32),
                    );
                    if sel.len() != batch.rows() {
                        batch = batch.take(&sel);
                    }
                }
                FlowStage::Project(cols) => batch = batch.project(cols),
            }
        }
        batch
    }
}

/// A link sender that pushes every batch through a [`Flow`] first.
///
/// The modeled transfer size is the *post-flow* size: this is the DPI
/// advantage — less data crosses the wire, and on offload links the
/// filtering itself is free.
pub struct FlowSender {
    link: LinkSender<Batch>,
    flow: Flow,
}

impl FlowSender {
    /// Wraps a link sender with a flow.
    pub fn new(link: LinkSender<Batch>, flow: Flow) -> Self {
        Self { link, flow }
    }

    /// Whether the underlying link offloads flow processing.
    pub fn is_offloaded(&self) -> bool {
        self.link.spec().offload
    }

    /// Applies the flow and ships the surviving tuples. Empty results are
    /// still shipped (zero-byte control message) so consumers can count
    /// batches for end-of-stream accounting.
    pub fn send(&mut self, batch: Batch) -> Result<(), PushError<Batch>> {
        let out = self.flow.apply(batch);
        let bytes = out.bytes();
        self.link.send(out, bytes)
    }

    /// Blocking variant of [`FlowSender::send`].
    pub fn send_blocking(&mut self, batch: Batch) -> Result<(), Batch> {
        let out = self.flow.apply(batch);
        let bytes = out.bytes();
        self.link.send_blocking(out, bytes)
    }

    /// Bulk path: splits `tuples` into `batch_rows`-sized [`Batch`]es,
    /// applies the flow to each, and ships the group through
    /// [`LinkSender::send_pipelined_blocking`] — one clock read and bulk
    /// ring crossings, but each batch keeps its own serialized wire
    /// transfer, so receivers still overlap consumption with the rest of
    /// the transfer (the pipelining Figure 6 depends on). Returns the
    /// number of batches shipped, or `Err` with how many were still
    /// unsent when the receiver vanished.
    pub fn send_split_blocking(
        &mut self,
        tuples: Vec<anydb_common::Tuple>,
        batch_rows: usize,
    ) -> Result<usize, usize> {
        self.send_batches_blocking(Batch::split(tuples, batch_rows))
    }

    /// Bulk path for producers that already built (incrementally sized)
    /// batches: applies the flow to each and ships the group pipelined.
    /// Returns the number of batches shipped, or `Err` with how many were
    /// still unsent when the receiver vanished.
    pub fn send_batches_blocking(&mut self, batches: Vec<Batch>) -> Result<usize, usize> {
        let batches: Vec<(Batch, usize)> = batches
            .into_iter()
            .map(|b| {
                let out = self.flow.apply(b);
                let bytes = out.bytes();
                (out, bytes)
            })
            .collect();
        let n = batches.len();
        self.link.send_pipelined_blocking(batches)?;
        Ok(n)
    }

    /// Consumes the sender, closing the stream.
    pub fn finish(self) {}
}

/// The columnar counterpart of [`FlowSender`]: ships [`ColumnBatch`]es
/// through a flow, modeling the *post-flow* columnar wire size (one tag
/// per column, values packed) — this is where the link-transfer savings
/// of the columnar path come from.
pub struct ColFlowSender {
    link: LinkSender<ColumnBatch>,
    flow: Flow,
}

impl ColFlowSender {
    /// Wraps a columnar link sender with a flow.
    pub fn new(link: LinkSender<ColumnBatch>, flow: Flow) -> Self {
        Self { link, flow }
    }

    /// Whether the underlying link offloads flow processing.
    pub fn is_offloaded(&self) -> bool {
        self.link.spec().offload
    }

    /// Applies the flow and ships the batch (empty results included, for
    /// end-of-stream accounting parity with the row path).
    pub fn send(&mut self, batch: ColumnBatch) -> Result<(), PushError<ColumnBatch>> {
        let out = self.flow.apply_columns(batch);
        let bytes = out.bytes();
        self.link.send(out, bytes)
    }

    /// Blocking variant of [`ColFlowSender::send`].
    pub fn send_blocking(&mut self, batch: ColumnBatch) -> Result<(), ColumnBatch> {
        let out = self.flow.apply_columns(batch);
        let bytes = out.bytes();
        self.link.send_blocking(out, bytes)
    }

    /// Bulk path mirroring [`FlowSender::send_split_blocking`]: splits a
    /// scan's worth of columns into `batch_rows`-row wire batches, applies
    /// the flow to each, and ships the group pipelined (one clock read;
    /// each batch keeps its own serialized transfer). The split is
    /// **zero-copy** — each wire batch is an offset/length view over the
    /// scan's `Arc`-shared buffers, so with an identity flow nothing on
    /// this path memcpys a value, at any batch size. Returns the number
    /// of batches shipped, or `Err` with how many were unsent when the
    /// receiver vanished.
    pub fn send_split_blocking(
        &mut self,
        batch: ColumnBatch,
        batch_rows: usize,
    ) -> Result<usize, usize> {
        let batches: Vec<(ColumnBatch, usize)> = batch
            .split(batch_rows)
            .into_iter()
            .map(|b| {
                let out = self.flow.apply_columns(b);
                let bytes = out.bytes();
                (out, bytes)
            })
            .collect();
        let n = batches.len();
        self.link.send_pipelined_blocking(batches)?;
        Ok(n)
    }

    /// Consumes the sender, closing the stream.
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkSpec, SimLink};
    use anydb_common::{DataType, Value};

    fn t2(a: i64, s: &str) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::str(s)])
    }

    #[test]
    fn identity_flow_passes_through() {
        let b = Batch::new(vec![t2(1, "a")]);
        let out = Flow::identity().apply(b.clone());
        assert_eq!(out.tuples(), b.tuples());
    }

    #[test]
    fn filter_stage_drops_tuples() {
        let flow = Flow::identity().filter(|t| t.get(0).as_int().unwrap() > 1);
        let out = flow.apply(Batch::new(vec![t2(1, "a"), t2(2, "b"), t2(3, "c")]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_stage_narrows_tuples() {
        let flow = Flow::identity().project(vec![1]);
        let out = flow.apply(Batch::new(vec![t2(1, "a")]));
        assert_eq!(out.tuples()[0].values(), &[Value::str("a")]);
    }

    #[test]
    fn stages_compose_in_order() {
        let flow = Flow::identity()
            .filter(|t| t.get(0).as_int().unwrap() % 2 == 0)
            .project(vec![1]);
        let out = flow.apply(Batch::new(vec![t2(1, "a"), t2(2, "b"), t2(4, "d")]));
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].arity(), 1);
    }

    #[test]
    fn flow_reduces_wire_bytes() {
        let flow = Flow::identity().filter(|t| t.get(0).as_int().unwrap() == 0);
        let big = Batch::new((0..100).map(|i| t2(i, "payload")).collect());
        let out = flow.apply(big.clone());
        assert!(out.bytes() < big.bytes() / 10);
    }

    #[test]
    fn apply_maintains_bytes_incrementally() {
        let flow = Flow::identity()
            .filter(|t| t.get(0).as_int().unwrap() % 2 == 0)
            .project(vec![1]);
        let out = flow.apply(Batch::new((0..10).map(|i| t2(i, "abc")).collect()));
        // with_bytes debug-asserts the count; re-check against a fresh sum.
        assert_eq!(out.bytes(), Batch::new(out.tuples().to_vec()).bytes());
    }

    #[test]
    fn columnar_and_row_application_agree() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let flow = Flow::identity()
            .filter_col(ColPredicate::IntGe { col: 0, min: 2 })
            .project(vec![1]);
        let tuples: Vec<Tuple> = (0..6).map(|i| t2(i, &format!("s{i}"))).collect();
        let cols = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        let row_out = flow.apply(Batch::new(tuples));
        let col_out = flow.apply_columns(cols);
        assert_eq!(col_out.to_tuples(), row_out.tuples());
        // Same surviving rows, cheaper columnar wire encoding.
        assert!(col_out.bytes() <= row_out.bytes());
    }

    #[test]
    fn range_and_conjunction_filters_agree_across_representations() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let flow = Flow::identity().filter_col(ColPredicate::And(vec![
            ColPredicate::IntBetween {
                col: 0,
                min: 1,
                max: 4,
            },
            ColPredicate::StrPrefix {
                col: 1,
                prefix: "s".into(),
            },
        ]));
        let tuples: Vec<Tuple> = (0..6)
            .map(|i| t2(i, if i % 2 == 0 { "skip-me" } else { "other" }))
            .collect();
        let cols = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        let row_out = flow.apply(Batch::new(tuples));
        let col_out = flow.apply_columns(cols);
        assert_eq!(col_out.to_tuples(), row_out.tuples());
        assert_eq!(col_out.rows(), 2); // rows 2 and 4
    }

    #[test]
    fn row_closure_filter_works_on_columns() {
        use anydb_common::{ColumnBatch, DataType};
        let flow = Flow::identity().filter(|t| t.get(1).as_str().unwrap() == "b");
        let tuples = vec![t2(1, "a"), t2(2, "b"), t2(3, "b")];
        let cols = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        assert_eq!(flow.apply_columns(cols).rows(), 2);
    }

    #[test]
    fn col_flow_sender_ships_post_flow_size() {
        use anydb_common::{ColPredicate, ColumnBatch, DataType};
        let (tx, mut rx) = SimLink::channel::<ColumnBatch>(LinkSpec::instant(), 8);
        let mut sender = ColFlowSender::new(
            tx,
            Flow::identity().filter_col(ColPredicate::IntGe { col: 0, min: 5 }),
        );
        assert!(!sender.is_offloaded());
        let tuples: Vec<Tuple> = (0..10).map(|i| t2(i, "x")).collect();
        let batch = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        assert_eq!(sender.send_split_blocking(batch, 4), Ok(3));
        let mut rows = 0;
        while let Ok(b) = rx.try_recv() {
            rows += b.rows();
        }
        assert_eq!(rows, 5);
    }

    #[test]
    fn flow_sender_ships_post_flow_size() {
        let (tx, mut rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 8);
        let mut sender = FlowSender::new(
            tx,
            Flow::identity().filter(|t| t.get(0).as_int().unwrap() < 2),
        );
        assert!(!sender.is_offloaded());
        sender
            .send(Batch::new(vec![t2(1, "a"), t2(5, "b")]))
            .unwrap();
        let got = rx.try_recv().unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn flow_codec_roundtrips_by_behavior() {
        // FlowStage holds closures, so equality is behavioral: the
        // decoded flow must transform batches exactly like the original.
        let flow = Flow::identity()
            .filter_col(ColPredicate::IntGe { col: 0, min: 3 })
            .project(vec![1, 0])
            .filter_col(ColPredicate::StrPrefix {
                col: 0,
                prefix: "x".into(),
            });
        let enc = flow.encode().unwrap();
        let dec = Flow::decode(&enc).unwrap();
        assert_eq!(dec.len(), 3);
        let tuples: Vec<Tuple> = (0..8).map(|i| t2(i, "x")).collect();
        let batch = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        assert_eq!(
            dec.apply_columns(batch.clone()),
            flow.apply_columns(batch.clone())
        );
        assert_eq!(dec.apply_columns(batch).rows(), 5);
        // The identity flow is two bytes of stage count.
        let identity = Flow::identity().encode().unwrap();
        assert_eq!(identity.len(), 2);
        assert!(Flow::decode(&identity).unwrap().is_empty());
    }

    #[test]
    fn flow_codec_rejects_closures_truncation_and_unknown_tags() {
        assert!(Flow::identity().filter(|_| true).encode().is_err());
        let flow = Flow::identity()
            .filter_col(ColPredicate::IntBetween {
                col: 2,
                min: 0,
                max: 9,
            })
            .project(vec![0, 2]);
        let enc = flow.encode().unwrap();
        for cut in 0..enc.len() {
            assert!(
                Flow::decode(&enc.slice(0..cut)).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut bad_tag = enc.chunk().to_vec();
        bad_tag[2] = 0xEE; // first stage tag sits after the u16 count
        assert!(Flow::decode(&Bytes::copy_from_slice(&bad_tag)).is_err());
        let mut trailing = enc.chunk().to_vec();
        trailing.push(0);
        assert!(Flow::decode(&Bytes::copy_from_slice(&trailing)).is_err());
    }
}
