//! DPI-style flows: stream transformations applied *en route*.
//!
//! The paper (§4, Figure 6) observes that with DPI [1] the network itself
//! acts as a co-processor: data beams across InfiniBand arrive pre-filtered
//! and pre-placed, making the disaggregated architecture *faster* than the
//! aggregated one. A [`Flow`] is an ordered list of relational stages
//! (filter, project) applied to every batch a [`FlowSender`] ships.
//!
//! Cost model: on an `offload` link (see [`crate::link::LinkSpec`]) the
//! stage CPU time is charged to nobody — the NIC does it. On a non-offload
//! link the sending thread pays for the processing, which is exactly what
//! happens when it executes the closure.

use std::sync::Arc;

use anydb_common::Tuple;

use crate::batch::Batch;
use crate::link::LinkSender;
use crate::spsc::PushError;

/// One transformation stage.
#[derive(Clone)]
pub enum FlowStage {
    /// Keep only tuples matching the predicate.
    Filter(Arc<dyn Fn(&Tuple) -> bool + Send + Sync>),
    /// Project onto the given column indices.
    Project(Vec<usize>),
}

impl std::fmt::Debug for FlowStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowStage::Filter(_) => write!(f, "Filter(..)"),
            FlowStage::Project(cols) => write!(f, "Project({cols:?})"),
        }
    }
}

/// An ordered pipeline of stages.
#[derive(Clone, Debug, Default)]
pub struct Flow {
    stages: Vec<FlowStage>,
}

impl Flow {
    /// The identity flow (ships batches unchanged).
    pub fn identity() -> Self {
        Self::default()
    }

    /// Appends a filter stage.
    pub fn filter(mut self, pred: impl Fn(&Tuple) -> bool + Send + Sync + 'static) -> Self {
        self.stages.push(FlowStage::Filter(Arc::new(pred)));
        self
    }

    /// Appends a projection stage.
    pub fn project(mut self, cols: Vec<usize>) -> Self {
        self.stages.push(FlowStage::Project(cols));
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True for the identity flow.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Applies all stages to a batch.
    pub fn apply(&self, batch: Batch) -> Batch {
        if self.stages.is_empty() {
            return batch;
        }
        let mut tuples = batch.into_tuples();
        for stage in &self.stages {
            match stage {
                FlowStage::Filter(pred) => tuples.retain(|t| pred(t)),
                FlowStage::Project(cols) => {
                    for t in &mut tuples {
                        *t = t.project(cols);
                    }
                }
            }
        }
        Batch::new(tuples)
    }
}

/// A link sender that pushes every batch through a [`Flow`] first.
///
/// The modeled transfer size is the *post-flow* size: this is the DPI
/// advantage — less data crosses the wire, and on offload links the
/// filtering itself is free.
pub struct FlowSender {
    link: LinkSender<Batch>,
    flow: Flow,
}

impl FlowSender {
    /// Wraps a link sender with a flow.
    pub fn new(link: LinkSender<Batch>, flow: Flow) -> Self {
        Self { link, flow }
    }

    /// Whether the underlying link offloads flow processing.
    pub fn is_offloaded(&self) -> bool {
        self.link.spec().offload
    }

    /// Applies the flow and ships the surviving tuples. Empty results are
    /// still shipped (zero-byte control message) so consumers can count
    /// batches for end-of-stream accounting.
    pub fn send(&mut self, batch: Batch) -> Result<(), PushError<Batch>> {
        let out = self.flow.apply(batch);
        let bytes = out.bytes();
        self.link.send(out, bytes)
    }

    /// Blocking variant of [`FlowSender::send`].
    pub fn send_blocking(&mut self, batch: Batch) -> Result<(), Batch> {
        let out = self.flow.apply(batch);
        let bytes = out.bytes();
        self.link.send_blocking(out, bytes)
    }

    /// Bulk path: splits `tuples` into `batch_rows`-sized [`Batch`]es,
    /// applies the flow to each, and ships the group through
    /// [`LinkSender::send_pipelined_blocking`] — one clock read and bulk
    /// ring crossings, but each batch keeps its own serialized wire
    /// transfer, so receivers still overlap consumption with the rest of
    /// the transfer (the pipelining Figure 6 depends on). Returns the
    /// number of batches shipped, or `Err` with how many were still
    /// unsent when the receiver vanished.
    pub fn send_split_blocking(
        &mut self,
        tuples: Vec<anydb_common::Tuple>,
        batch_rows: usize,
    ) -> Result<usize, usize> {
        let batches: Vec<(Batch, usize)> = Batch::split(tuples, batch_rows)
            .into_iter()
            .map(|b| {
                let out = self.flow.apply(b);
                let bytes = out.bytes();
                (out, bytes)
            })
            .collect();
        let n = batches.len();
        self.link.send_pipelined_blocking(batches)?;
        Ok(n)
    }

    /// Consumes the sender, closing the stream.
    pub fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{LinkSpec, SimLink};
    use anydb_common::Value;

    fn t2(a: i64, s: &str) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::str(s)])
    }

    #[test]
    fn identity_flow_passes_through() {
        let b = Batch::new(vec![t2(1, "a")]);
        let out = Flow::identity().apply(b.clone());
        assert_eq!(out.tuples(), b.tuples());
    }

    #[test]
    fn filter_stage_drops_tuples() {
        let flow = Flow::identity().filter(|t| t.get(0).as_int().unwrap() > 1);
        let out = flow.apply(Batch::new(vec![t2(1, "a"), t2(2, "b"), t2(3, "c")]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_stage_narrows_tuples() {
        let flow = Flow::identity().project(vec![1]);
        let out = flow.apply(Batch::new(vec![t2(1, "a")]));
        assert_eq!(out.tuples()[0].values(), &[Value::str("a")]);
    }

    #[test]
    fn stages_compose_in_order() {
        let flow = Flow::identity()
            .filter(|t| t.get(0).as_int().unwrap() % 2 == 0)
            .project(vec![1]);
        let out = flow.apply(Batch::new(vec![t2(1, "a"), t2(2, "b"), t2(4, "d")]));
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].arity(), 1);
    }

    #[test]
    fn flow_reduces_wire_bytes() {
        let flow = Flow::identity().filter(|t| t.get(0).as_int().unwrap() == 0);
        let big = Batch::new((0..100).map(|i| t2(i, "payload")).collect());
        let out = flow.apply(big.clone());
        assert!(out.bytes() < big.bytes() / 10);
    }

    #[test]
    fn flow_sender_ships_post_flow_size() {
        let (tx, mut rx) = SimLink::channel::<Batch>(LinkSpec::instant(), 8);
        let mut sender = FlowSender::new(
            tx,
            Flow::identity().filter(|t| t.get(0).as_int().unwrap() < 2),
        );
        assert!(!sender.is_offloaded());
        sender
            .send(Batch::new(vec![t2(1, "a"), t2(5, "b")]))
            .unwrap();
        let got = rx.try_recv().unwrap();
        assert_eq!(got.len(), 1);
    }
}
