//! Multi-producer event inbox with bulk transfer.
//!
//! Each AC has one inbox for its *event stream*: many components (clients,
//! the QO, other ACs) enqueue events, one AC drains them. The queue is a
//! mutex-guarded `VecDeque` with explicit sender accounting — and that
//! choice is deliberate: the hot-path cost of an event queue is dominated
//! by per-event synchronization, so the API is built around *batched*
//! crossings ([`InboxSender::send_many`], [`Inbox::drain_into`]) that move
//! a whole group of events per lock acquisition. A `len` counter kept
//! outside the lock lets the idle AC poll emptiness without touching the
//! mutex at all.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use anydb_common::backoff::Backoff;
use parking_lot::Mutex;

use crate::spsc::PopState;

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Mirror of `queue.len()`, only ever updated while holding the queue
    /// lock (so it cannot drift from the queue), but readable without it —
    /// empty polls never acquire the mutex.
    len: AtomicUsize,
    senders: AtomicUsize,
}

/// The receiving half of an event inbox (owned by one AC).
pub struct Inbox<T> {
    shared: Arc<Shared<T>>,
}

/// A cloneable sending half.
pub struct InboxSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Inbox<T> {
    /// Creates an inbox and its first sender.
    pub fn new() -> (InboxSender<T>, Inbox<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
        });
        (
            InboxSender {
                shared: shared.clone(),
            },
            Inbox { shared },
        )
    }

    /// Non-blocking pop.
    pub fn pop(&self) -> Result<T, PopState> {
        if self.shared.len.load(Ordering::Acquire) > 0 {
            let mut queue = self.shared.queue.lock();
            if let Some(v) = queue.pop_front() {
                self.shared.len.fetch_sub(1, Ordering::AcqRel);
                return Ok(v);
            }
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            // Senders may have pushed right before dropping; check the
            // queue once more to not lose a final message.
            let mut queue = self.shared.queue.lock();
            if let Some(v) = queue.pop_front() {
                self.shared.len.fetch_sub(1, Ordering::AcqRel);
                Ok(v)
            } else {
                Err(PopState::Disconnected)
            }
        } else {
            Err(PopState::Empty)
        }
    }

    /// Bulk pop: moves up to `max` queued events into `out` under a single
    /// lock acquisition; returns how many were taken. `Err(Empty)` /
    /// `Err(Disconnected)` when nothing was queued.
    ///
    /// This is the AC-side half of batched event streaming: one wakeup
    /// drains a chunk, and the cost of the mutex handshake is amortized
    /// over every event in it.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> Result<usize, PopState> {
        debug_assert!(max > 0, "drain_into with max = 0 can never make progress");
        if self.shared.len.load(Ordering::Acquire) == 0
            && self.shared.senders.load(Ordering::Acquire) > 0
        {
            return Err(PopState::Empty);
        }
        let mut queue = self.shared.queue.lock();
        let n = queue.len().min(max);
        if n == 0 {
            drop(queue);
            return if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(PopState::Disconnected)
            } else {
                Err(PopState::Empty)
            };
        }
        out.extend(queue.drain(..n));
        self.shared.len.fetch_sub(n, Ordering::AcqRel);
        Ok(n)
    }

    /// Pops, backing off (spin → yield → sleep) until a message arrives or
    /// all senders are gone, so an idle AC never burns a whole core.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut backoff = Backoff::new();
        loop {
            match self.pop() {
                Ok(v) => return Some(v),
                Err(PopState::Disconnected) => return None,
                Err(PopState::Empty) => backoff.wait(),
            }
        }
    }

    /// Current queue length (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::Acquire)
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live senders.
    pub fn sender_count(&self) -> usize {
        self.shared.senders.load(Ordering::Acquire)
    }
}

impl<T> InboxSender<T> {
    /// Enqueues a message. Never blocks (unbounded queue).
    pub fn send(&self, value: T) {
        let mut queue = self.shared.queue.lock();
        queue.push_back(value);
        self.shared.len.fetch_add(1, Ordering::AcqRel);
    }

    /// Enqueues a group of messages under one lock acquisition — the
    /// sender-side half of batched event streaming.
    pub fn send_many(&self, values: impl IntoIterator<Item = T>) {
        let mut queue = self.shared.queue.lock();
        let before = queue.len();
        queue.extend(values);
        let added = queue.len() - before;
        if added > 0 {
            self.shared.len.fetch_add(added, Ordering::AcqRel);
        }
    }

    /// Destination backlog as seen from the sending side (the `len`
    /// mirror, read without the lock). This is the depth signal adaptive
    /// batching feeds on: a deep inbox means the receiver is behind and
    /// grouping more events per crossing costs no extra latency.
    pub fn len(&self) -> usize {
        self.shared.len.load(Ordering::Acquire)
    }

    /// True if the destination queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for InboxSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        InboxSender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for InboxSender<T> {
    fn drop(&mut self) {
        self.shared.senders.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_pop() {
        let (tx, rx) = Inbox::new();
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.pop(), Ok(1));
        assert_eq!(rx.pop(), Ok(2));
        assert_eq!(rx.pop(), Err(PopState::Empty));
    }

    #[test]
    fn multiple_senders() {
        let (tx, rx) = Inbox::new();
        let tx2 = tx.clone();
        assert_eq!(rx.sender_count(), 2);
        tx.send(1);
        tx2.send(2);
        let mut got = vec![rx.pop().unwrap(), rx.pop().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnect_when_all_senders_dropped() {
        let (tx, rx) = Inbox::new();
        let tx2 = tx.clone();
        tx.send(7);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.pop(), Ok(7));
        assert_eq!(rx.pop(), Err(PopState::Disconnected));
    }

    #[test]
    fn concurrent_senders_deliver_everything() {
        let (tx, rx) = Inbox::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(t * 10_000 + i);
                }
            }));
        }
        drop(tx);
        let mut seen = 0u64;
        while rx.pop_blocking().is_some() {
            seen += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen, 40_000);
    }

    #[test]
    fn pop_blocking_wakes_on_late_send() {
        let (tx, rx) = Inbox::new();
        let h = std::thread::spawn(move || rx.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }

    #[test]
    fn send_many_preserves_order_across_senders() {
        let (tx, rx) = Inbox::new();
        tx.send_many([1, 2, 3]);
        let tx2 = tx.clone();
        tx2.send_many(vec![4, 5]);
        assert_eq!(rx.len(), 5);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 100), Ok(5));
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn drain_into_respects_max() {
        let (tx, rx) = Inbox::new();
        tx.send_many(0..10);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 4), Ok(4));
        assert_eq!(rx.drain_into(&mut out, 4), Ok(4));
        assert_eq!(rx.drain_into(&mut out, 4), Ok(2));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_into(&mut out, 4), Err(PopState::Empty));
        drop(tx);
        assert_eq!(rx.drain_into(&mut out, 4), Err(PopState::Disconnected));
    }

    #[test]
    fn drain_sees_final_messages_after_disconnect() {
        let (tx, rx) = Inbox::new();
        tx.send_many([1, 2]);
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.drain_into(&mut out, 10), Ok(2));
        assert_eq!(rx.drain_into(&mut out, 10), Err(PopState::Disconnected));
    }

    #[test]
    fn concurrent_bulk_senders_bulk_receiver() {
        let (tx, rx) = Inbox::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for chunk in 0..100u64 {
                    let base = t * 100_000 + chunk * 100;
                    tx.send_many(base..base + 100);
                }
            }));
        }
        drop(tx);
        let mut all = Vec::new();
        let mut backoff = Backoff::new();
        loop {
            match rx.drain_into(&mut all, 256) {
                Ok(_) => backoff.reset(),
                Err(PopState::Empty) => backoff.wait(),
                Err(PopState::Disconnected) => break,
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(all.len(), 40_000);
        // Per-sender order must hold even though senders interleave.
        for t in 0..4u64 {
            let mine: Vec<u64> = all.iter().copied().filter(|v| v / 100_000 == t).collect();
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "sender {t} reordered");
        }
    }
}
