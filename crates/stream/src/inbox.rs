//! Multi-producer event inbox.
//!
//! Each AC has one inbox for its *event stream*: many components (clients,
//! the QO, other ACs) enqueue events, one AC drains them. Built on
//! crossbeam's `SegQueue` (unbounded MPMC used MPSC-style) with explicit
//! sender accounting for disconnect detection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::queue::SegQueue;

use crate::spsc::PopState;

struct Shared<T> {
    queue: SegQueue<T>,
    senders: AtomicUsize,
}

/// The receiving half of an event inbox (owned by one AC).
pub struct Inbox<T> {
    shared: Arc<Shared<T>>,
}

/// A cloneable sending half.
pub struct InboxSender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Inbox<T> {
    /// Creates an inbox and its first sender.
    pub fn new() -> (InboxSender<T>, Inbox<T>) {
        let shared = Arc::new(Shared {
            queue: SegQueue::new(),
            senders: AtomicUsize::new(1),
        });
        (
            InboxSender {
                shared: shared.clone(),
            },
            Inbox { shared },
        )
    }

    /// Non-blocking pop.
    pub fn pop(&self) -> Result<T, PopState> {
        match self.shared.queue.pop() {
            Some(v) => Ok(v),
            None => {
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    // Senders may have pushed right before dropping; check
                    // the queue once more to not lose a final message.
                    match self.shared.queue.pop() {
                        Some(v) => Ok(v),
                        None => Err(PopState::Disconnected),
                    }
                } else {
                    Err(PopState::Empty)
                }
            }
        }
    }

    /// Pops, spinning until a message arrives or all senders are gone.
    pub fn pop_blocking(&self) -> Option<T> {
        loop {
            match self.pop() {
                Ok(v) => return Some(v),
                Err(PopState::Disconnected) => return None,
                Err(PopState::Empty) => {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Current queue length (approximate under concurrency).
    pub fn len(&self) -> usize {
        self.shared.queue.len()
    }

    /// True if the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.shared.queue.is_empty()
    }

    /// Number of live senders.
    pub fn sender_count(&self) -> usize {
        self.shared.senders.load(Ordering::Acquire)
    }
}

impl<T> InboxSender<T> {
    /// Enqueues a message. Never blocks (unbounded queue).
    pub fn send(&self, value: T) {
        self.shared.queue.push(value);
    }
}

impl<T> Clone for InboxSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        InboxSender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for InboxSender<T> {
    fn drop(&mut self) {
        self.shared.senders.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_pop() {
        let (tx, rx) = Inbox::new();
        tx.send(1);
        tx.send(2);
        assert_eq!(rx.pop(), Ok(1));
        assert_eq!(rx.pop(), Ok(2));
        assert_eq!(rx.pop(), Err(PopState::Empty));
    }

    #[test]
    fn multiple_senders() {
        let (tx, rx) = Inbox::new();
        let tx2 = tx.clone();
        assert_eq!(rx.sender_count(), 2);
        tx.send(1);
        tx2.send(2);
        let mut got = vec![rx.pop().unwrap(), rx.pop().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn disconnect_when_all_senders_dropped() {
        let (tx, rx) = Inbox::new();
        let tx2 = tx.clone();
        tx.send(7);
        drop(tx);
        drop(tx2);
        assert_eq!(rx.pop(), Ok(7));
        assert_eq!(rx.pop(), Err(PopState::Disconnected));
    }

    #[test]
    fn concurrent_senders_deliver_everything() {
        let (tx, rx) = Inbox::new();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    tx.send(t * 10_000 + i);
                }
            }));
        }
        drop(tx);
        let mut seen = 0u64;
        while rx.pop_blocking().is_some() {
            seen += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen, 40_000);
    }

    #[test]
    fn pop_blocking_wakes_on_late_send() {
        let (tx, rx) = Inbox::new();
        let h = std::thread::spawn(move || rx.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(99);
        assert_eq!(h.join().unwrap(), Some(99));
    }
}
