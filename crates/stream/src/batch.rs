//! Tuple batches — the unit shipped on data streams.
//!
//! Data streams move state between ACs in batches rather than tuple-at-a-
//! time; the batch also carries its wire size so simulated links can model
//! transfer time without re-measuring every tuple.

use anydb_common::Tuple;

/// A batch of tuples with a precomputed wire size.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    tuples: Vec<Tuple>,
    bytes: usize,
}

impl Batch {
    /// Creates a batch, computing its wire size with a full pass over the
    /// tuples. Producers that already know the size (scans and flows
    /// maintain a running count as they touch each tuple once) should use
    /// [`Batch::with_bytes`] instead and skip the second walk.
    pub fn new(tuples: Vec<Tuple>) -> Self {
        let bytes = tuples.iter().map(Tuple::wire_size).sum();
        Self { tuples, bytes }
    }

    /// Creates a batch from tuples whose total wire size the producer
    /// already maintained incrementally.
    ///
    /// Debug builds verify the claimed size; release builds trust it —
    /// the whole point is not to re-walk the tuples.
    pub fn with_bytes(tuples: Vec<Tuple>, bytes: usize) -> Self {
        debug_assert_eq!(
            bytes,
            tuples.iter().map(Tuple::wire_size).sum::<usize>(),
            "incremental byte count out of sync"
        );
        Self { tuples, bytes }
    }

    /// An empty batch (also used as an end-of-stream marker by convention
    /// of some operators; streams additionally close their link).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The tuples.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the batch.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if there are no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Wire size in bytes, used by link transfer modeling.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Appends a tuple, maintaining the size.
    pub fn push(&mut self, t: Tuple) {
        self.bytes += t.wire_size();
        self.tuples.push(t);
    }

    /// Splits a vector of tuples into batches of at most `batch_rows`
    /// rows, sizing each batch with one incremental pass.
    pub fn split(tuples: Vec<Tuple>, batch_rows: usize) -> Vec<Batch> {
        assert!(batch_rows > 0);
        let mut out = Vec::with_capacity(tuples.len().div_ceil(batch_rows));
        let mut cur = Batch::with_bytes(Vec::with_capacity(batch_rows.min(tuples.len())), 0);
        for t in tuples {
            cur.push(t);
            if cur.len() == batch_rows {
                out.push(std::mem::replace(
                    &mut cur,
                    Batch::with_bytes(Vec::with_capacity(batch_rows), 0),
                ));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Value;

    fn t(i: i64) -> Tuple {
        Tuple::new(vec![Value::Int(i)])
    }

    #[test]
    fn new_computes_bytes() {
        let b = Batch::new(vec![t(1), t(2)]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.bytes(), 2 * t(0).wire_size());
    }

    #[test]
    fn push_maintains_bytes() {
        let mut b = Batch::empty();
        assert!(b.is_empty());
        b.push(t(5));
        assert_eq!(b.bytes(), t(5).wire_size());
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn split_respects_batch_rows() {
        let batches = Batch::split((0..10).map(t).collect(), 4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[1].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn split_empty_produces_no_batches() {
        assert!(Batch::split(Vec::new(), 4).is_empty());
    }

    #[test]
    fn with_bytes_agrees_with_measured() {
        let size = t(0).wire_size();
        let measured = Batch::new(vec![t(1), t(2)]);
        let claimed = Batch::with_bytes(vec![t(1), t(2)], 2 * size);
        assert_eq!(measured.bytes(), claimed.bytes());
    }
}
