//! Simulated point-to-point links.
//!
//! A [`SimLink`] is an SPSC ring whose messages become *visible* to the
//! receiver only after a modeled delivery time: `deliver_at = max(now,
//! link_busy_until) + latency + bytes / bandwidth`. The sender tracks
//! `busy_until` to serialize transfers on the link (bandwidth occupancy),
//! exactly like a NIC draining a send queue.
//!
//! This is how the reproduction stands in for hardware we do not have
//! (NUMA interconnects, InfiniBand with DPI flows): the *code path* — a
//! non-blocking receiver that treats in-flight data as "not there yet" —
//! is identical; only the delay constants are modeled. See DESIGN.md §2.
//!
//! Links with zero latency and unlimited bandwidth skip clock reads
//! entirely so OLTP-scale message rates are not throttled by `Instant::now`
//! overhead.

use std::time::{Duration, Instant};

use crate::fault::{FaultAction, FaultSpec, FaultState, FaultStats};
use crate::spsc::{spsc_channel, PopState, PushError, SpscConsumer, SpscProducer};

/// Delivery model parameters for one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation latency added to every message.
    pub latency: Duration,
    /// Bandwidth in bytes/second; `f64::INFINITY` disables transfer cost.
    pub bytes_per_sec: f64,
    /// Whether the link has DPI-style processing offload (flows run on the
    /// "NIC" for free; see [`crate::flow`]).
    pub offload: bool,
}

impl LinkSpec {
    /// An ideal link: no latency, no transfer cost. Messages are visible
    /// immediately; no clock is read on the send path.
    pub const fn instant() -> Self {
        Self {
            latency: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
            offload: false,
        }
    }

    /// True if the link needs no delivery-time modeling.
    #[inline]
    pub fn is_instant(&self) -> bool {
        self.latency.is_zero() && self.bytes_per_sec.is_infinite()
    }

    /// Pure transfer time of `bytes` at this link's bandwidth.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if self.bytes_per_sec.is_infinite() || bytes == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        }
    }
}

/// Marker namespace for constructing links.
pub struct SimLink;

impl SimLink {
    /// Creates a simulated link with the given spec and ring capacity.
    pub fn channel<T>(spec: LinkSpec, cap: usize) -> (LinkSender<T>, LinkReceiver<T>) {
        let (tx, rx) = spsc_channel(cap);
        (
            LinkSender {
                ring: tx,
                spec,
                busy_until: None,
                faults: None,
            },
            LinkReceiver { ring: rx, spec },
        )
    }

    /// Like [`SimLink::channel`] but with a [`FaultSpec`] armed on the
    /// sender from the first message.
    pub fn faulty_channel<T>(
        spec: LinkSpec,
        cap: usize,
        faults: FaultSpec,
    ) -> (LinkSender<T>, LinkReceiver<T>) {
        let (mut tx, rx) = Self::channel(spec, cap);
        tx.inject_faults(faults);
        (tx, rx)
    }
}

struct Timed<T> {
    /// `None` means deliverable immediately (instant link).
    deliver_at: Option<Instant>,
    item: T,
}

/// Sending half of a simulated link. Single producer.
pub struct LinkSender<T> {
    ring: SpscProducer<Timed<T>>,
    spec: LinkSpec,
    busy_until: Option<Instant>,
    /// Armed fault plan; `None` (the default) costs nothing on the send
    /// path beyond one branch.
    faults: Option<Box<FaultState>>,
}

/// Receiving half of a simulated link. Single consumer.
pub struct LinkReceiver<T> {
    ring: SpscConsumer<Timed<T>>,
    spec: LinkSpec,
}

/// Result of a non-blocking receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvState {
    /// No message queued.
    Empty,
    /// A message is in flight; it becomes visible at the given instant.
    NotReady(Instant),
    /// The sender is gone and everything sent has been received.
    Disconnected,
}

/// Result of a deadline-bounded receive ([`LinkReceiver::recv_deadline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineRecv<T> {
    /// A message was delivered in time.
    Msg(T),
    /// The deadline passed with nothing delivered. The link may still be
    /// healthy (slow, lossy, or idle) — that ambiguity is exactly what
    /// lease-based failure detection must decide on.
    TimedOut,
    /// The sender is gone and everything sent has been received.
    Disconnected,
}

impl<T> LinkSender<T> {
    /// Arms a fault plan on this sender. Every subsequent send consults
    /// it: drops consume the message silently (the send *succeeds* — a
    /// lossy link acks nothing), cuts fail the send exactly like a
    /// receiver disconnect, and delay spikes stretch the modeled delivery
    /// time. Re-arming replaces the previous plan.
    pub fn inject_faults(&mut self, spec: FaultSpec) {
        self.faults = Some(Box::new(FaultState::new(spec)));
    }

    /// What the armed fault plan has done so far (zeroes if none armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    #[inline]
    fn fault_decide(&mut self) -> FaultAction {
        match &mut self.faults {
            Some(f) => f.decide(),
            None => FaultAction::Deliver(Duration::ZERO),
        }
    }

    /// Pushes an injected delay spike onto a computed delivery time. An
    /// instant link's `None` must materialize into a real timestamp —
    /// the spike is the whole point of the fault.
    #[inline]
    fn spiked(deliver_at: Option<Instant>, extra: Duration) -> Option<Instant> {
        if extra.is_zero() {
            deliver_at
        } else {
            Some(deliver_at.unwrap_or_else(Instant::now) + extra)
        }
    }

    /// Sends `item` whose modeled wire size is `bytes`. Fails if the ring
    /// is full (backpressure) or the receiver is gone.
    pub fn send(&mut self, item: T, bytes: usize) -> Result<(), PushError<T>> {
        let extra = match self.fault_decide() {
            FaultAction::Deliver(extra) => extra,
            FaultAction::Drop => return Ok(()),
            FaultAction::Cut => return Err(PushError::Disconnected(item)),
        };
        let deliver_at = Self::spiked(self.compute_deliver_at(bytes), extra);
        self.ring
            .push(Timed { deliver_at, item })
            .map_err(|e| match e {
                PushError::Full(t) => PushError::Full(t.item),
                PushError::Disconnected(t) => PushError::Disconnected(t.item),
            })
    }

    /// Sends, spinning under backpressure. Returns the item if the
    /// receiver disconnected.
    pub fn send_blocking(&mut self, item: T, bytes: usize) -> Result<(), T> {
        let extra = match self.fault_decide() {
            FaultAction::Deliver(extra) => extra,
            FaultAction::Drop => return Ok(()),
            FaultAction::Cut => return Err(item),
        };
        let deliver_at = Self::spiked(self.compute_deliver_at(bytes), extra);
        self.ring
            .push_blocking(Timed { deliver_at, item })
            .map_err(|t| t.item)
    }

    /// Bulk send: ships every item as one wire transfer of `total_bytes`.
    ///
    /// All items share a single modeled delivery time — exactly how one
    /// batched message behaves on a real link — so the whole group costs
    /// one clock read and one `busy_until` update instead of one per item,
    /// and the ring crossing uses the bulk [`SpscProducer::push_drain`]
    /// path. Spins under backpressure; returns `Err(remaining)` count if
    /// the receiver disconnects mid-batch.
    ///
    /// Use this when the group really is one logical message. For a
    /// sequence of *separate* transfers (a scan's batches), use
    /// [`LinkSender::send_pipelined_blocking`], which keeps per-item
    /// delivery times so the receiver can overlap consumption with the
    /// rest of the transfer.
    pub fn send_many_blocking(&mut self, items: Vec<T>, total_bytes: usize) -> Result<(), usize> {
        // One fault decision for the batch: it is one wire message.
        let extra = match self.fault_decide() {
            FaultAction::Deliver(extra) => extra,
            FaultAction::Drop => return Ok(()),
            FaultAction::Cut => return Err(items.len()),
        };
        let deliver_at = Self::spiked(self.compute_deliver_at(total_bytes), extra);
        let timed: Vec<Timed<T>> = items
            .into_iter()
            .map(|item| Timed { deliver_at, item })
            .collect();
        self.push_all(timed)
    }

    /// Bulk send of *separate* transfers: each item keeps its own wire
    /// size and serialized delivery time (transfer `k+1` starts when `k`
    /// leaves the link), preserving the transfer/compute overlap of a
    /// `send_blocking` loop — but the whole group costs one clock read,
    /// and the ring crossing uses the bulk path. Spins under
    /// backpressure; returns `Err(remaining)` on receiver disconnect.
    pub fn send_pipelined_blocking(
        &mut self,
        items: impl IntoIterator<Item = (T, usize)>,
    ) -> Result<(), usize> {
        let now = if self.spec.is_instant() {
            None
        } else {
            Some(Instant::now())
        };
        // Each transfer is a separate wire message, so each gets its own
        // fault decision: drops skip the item, a cut refuses it and
        // everything after it (reported like a mid-batch disconnect).
        let mut cut_remaining = 0usize;
        let mut items = items.into_iter();
        let mut timed: Vec<Timed<T>> = Vec::new();
        for (item, bytes) in items.by_ref() {
            let extra = match self.fault_decide() {
                FaultAction::Deliver(extra) => extra,
                FaultAction::Drop => continue,
                FaultAction::Cut => {
                    cut_remaining = 1;
                    break;
                }
            };
            let deliver_at = now.map(|now| {
                let start = match self.busy_until {
                    Some(b) if b > now => b,
                    _ => now,
                };
                let busy = start + self.spec.transfer_time(bytes);
                self.busy_until = Some(busy);
                busy + self.spec.latency
            });
            timed.push(Timed {
                deliver_at: Self::spiked(deliver_at, extra),
                item,
            });
        }
        if cut_remaining > 0 {
            cut_remaining += items.count();
        }
        let pushed = self.push_all(timed);
        match (pushed, cut_remaining) {
            (Ok(()), 0) => Ok(()),
            (Ok(()), n) => Err(n),
            (Err(left), n) => Err(left + n),
        }
    }

    fn push_all(&mut self, mut timed: Vec<Timed<T>>) -> Result<(), usize> {
        while !timed.is_empty() {
            match self.ring.push_drain(&mut timed) {
                Ok(0) => {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
                Ok(_) => {}
                Err(_) => return Err(timed.len()),
            }
        }
        Ok(())
    }

    fn compute_deliver_at(&mut self, bytes: usize) -> Option<Instant> {
        if self.spec.is_instant() {
            return None;
        }
        let now = Instant::now();
        let start = match self.busy_until {
            Some(b) if b > now => b,
            _ => now,
        };
        let xfer = self.spec.transfer_time(bytes);
        // The link is occupied while the payload is on the wire; latency is
        // propagation delay and does not occupy the link.
        self.busy_until = Some(start + xfer);
        Some(start + xfer + self.spec.latency)
    }

    /// When the link becomes free to start the next transfer (used by
    /// tests and by flow senders to model pipelining).
    pub fn busy_until(&self) -> Option<Instant> {
        self.busy_until
    }

    /// The link spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// True if the receiving half was dropped.
    pub fn is_disconnected(&self) -> bool {
        self.ring.is_disconnected()
    }

    /// Number of queued (possibly in-flight) messages.
    pub fn queued(&self) -> usize {
        self.ring.len()
    }
}

impl<T> LinkReceiver<T> {
    /// Non-blocking receive respecting modeled delivery time.
    pub fn try_recv(&mut self) -> Result<T, RecvState> {
        match self.ring.peek() {
            Some(timed) => {
                if let Some(at) = timed.deliver_at {
                    if at > Instant::now() {
                        return Err(RecvState::NotReady(at));
                    }
                }
                match self.ring.pop() {
                    Ok(t) => Ok(t.item),
                    // unreachable in SPSC (we just peeked), but degrade
                    // gracefully rather than panic.
                    Err(PopState::Empty) => Err(RecvState::Empty),
                    Err(PopState::Disconnected) => Err(RecvState::Disconnected),
                }
            }
            None => {
                if self.ring.is_disconnected() && self.ring.is_empty() {
                    Err(RecvState::Disconnected)
                } else {
                    Err(RecvState::Empty)
                }
            }
        }
    }

    /// Receives, waiting until a message is delivered; `None` on
    /// disconnect. A message that is queued but still "in flight" puts
    /// the caller to sleep until its modeled delivery time — receivers
    /// must not burn a core waiting for the network, especially on small
    /// hosts where that core belongs to the producer.
    pub fn recv_blocking(&mut self) -> Option<T> {
        let mut backoff = anydb_common::backoff::Backoff::new();
        loop {
            match self.try_recv() {
                Ok(v) => return Some(v),
                Err(RecvState::Disconnected) => return None,
                Err(RecvState::NotReady(at)) => {
                    let now = Instant::now();
                    if at > now {
                        std::thread::sleep(at - now);
                    }
                }
                Err(RecvState::Empty) => backoff.wait(),
            }
        }
    }

    /// Receives with a deadline: waits like [`LinkReceiver::recv_blocking`]
    /// but gives up at `deadline`. A message that would be *delivered*
    /// after the deadline counts as a timeout — the caller's clock, not
    /// the wire's, decides. This is what failure detection (leases) and
    /// request retries are built on.
    pub fn recv_deadline(&mut self, deadline: Instant) -> DeadlineRecv<T> {
        let mut backoff = anydb_common::backoff::Backoff::new();
        loop {
            match self.try_recv() {
                Ok(v) => return DeadlineRecv::Msg(v),
                Err(RecvState::Disconnected) => return DeadlineRecv::Disconnected,
                Err(RecvState::NotReady(at)) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return DeadlineRecv::TimedOut;
                    }
                    let until = at.min(deadline);
                    if until > now {
                        std::thread::sleep(until - now);
                    }
                }
                Err(RecvState::Empty) => {
                    if Instant::now() >= deadline {
                        return DeadlineRecv::TimedOut;
                    }
                    backoff.wait();
                }
            }
        }
    }

    /// Drains every message that is already deliverable into `out`;
    /// returns how many were drained.
    pub fn drain_ready(&mut self, out: &mut Vec<T>) -> usize {
        self.drain_ready_max(out, usize::MAX)
    }

    /// Like [`LinkReceiver::drain_ready`] but takes at most `max`
    /// messages, and reads the clock once for the whole drain instead of
    /// once per message (in-flight checks compare against that one
    /// timestamp — correct because delivery times are monotone per link).
    pub fn drain_ready_max(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut now: Option<Instant> = None;
        let mut n = 0;
        while n < max {
            match self.ring.peek() {
                Some(timed) => {
                    if let Some(at) = timed.deliver_at {
                        let now = *now.get_or_insert_with(Instant::now);
                        if at > now {
                            break;
                        }
                    }
                    match self.ring.pop() {
                        Ok(t) => {
                            out.push(t.item);
                            n += 1;
                        }
                        Err(_) => break,
                    }
                }
                None => break,
            }
        }
        n
    }

    /// The link spec.
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// True if the sender is gone (messages may still be in flight).
    pub fn is_disconnected(&self) -> bool {
        self.ring.is_disconnected()
    }

    /// Number of queued (possibly undeliverable yet) messages.
    pub fn queued(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_link_delivers_immediately() {
        let (mut tx, mut rx) = SimLink::channel(LinkSpec::instant(), 8);
        tx.send(1u32, 1024).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn latency_delays_delivery() {
        let spec = LinkSpec {
            latency: Duration::from_millis(20),
            bytes_per_sec: f64::INFINITY,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 8);
        tx.send(7u32, 0).unwrap();
        match rx.try_recv() {
            Err(RecvState::NotReady(_)) => {}
            other => panic!("expected NotReady, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(rx.try_recv(), Ok(7));
    }

    #[test]
    fn bandwidth_scales_with_size() {
        // 1 MB at 100 MB/s = 10ms.
        let spec = LinkSpec {
            latency: Duration::ZERO,
            bytes_per_sec: 100.0 * 1024.0 * 1024.0,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 8);
        let start = Instant::now();
        tx.send((), 1024 * 1024).unwrap();
        let v = rx.recv_blocking();
        let elapsed = start.elapsed();
        assert!(v.is_some());
        assert!(
            elapsed >= Duration::from_millis(9),
            "delivered too early: {elapsed:?}"
        );
    }

    #[test]
    fn transfers_serialize_on_the_link() {
        // Two 10ms transfers must take ~20ms total, not 10ms.
        let spec = LinkSpec {
            latency: Duration::ZERO,
            bytes_per_sec: 100.0 * 1024.0 * 1024.0,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 8);
        let start = Instant::now();
        tx.send(1u8, 1024 * 1024).unwrap();
        tx.send(2u8, 1024 * 1024).unwrap();
        assert_eq!(rx.recv_blocking(), Some(1));
        assert_eq!(rx.recv_blocking(), Some(2));
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(18),
            "transfers overlapped: {elapsed:?}"
        );
    }

    #[test]
    fn fifo_even_with_delays() {
        let spec = LinkSpec {
            latency: Duration::from_micros(100),
            bytes_per_sec: 1e9,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 64);
        for i in 0..32u32 {
            tx.send(i, 100).unwrap();
        }
        for i in 0..32u32 {
            assert_eq!(rx.recv_blocking(), Some(i));
        }
    }

    #[test]
    fn disconnect_propagates() {
        let (tx, mut rx) = SimLink::channel::<u8>(LinkSpec::instant(), 4);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(RecvState::Disconnected));
    }

    #[test]
    fn in_flight_message_survives_sender_drop() {
        let spec = LinkSpec {
            latency: Duration::from_millis(10),
            bytes_per_sec: f64::INFINITY,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 4);
        tx.send(9u8, 0).unwrap();
        drop(tx);
        // Still in flight: NotReady, not Disconnected.
        assert!(matches!(rx.try_recv(), Err(RecvState::NotReady(_))));
        std::thread::sleep(Duration::from_millis(12));
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(rx.try_recv(), Err(RecvState::Disconnected));
    }

    #[test]
    fn drain_ready_takes_only_delivered() {
        let spec = LinkSpec {
            latency: Duration::from_millis(30),
            bytes_per_sec: f64::INFINITY,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 8);
        tx.send(1u8, 0).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.drain_ready(&mut out), 0);
        std::thread::sleep(Duration::from_millis(35));
        tx.send(2u8, 0).unwrap(); // not deliverable yet
        assert_eq!(rx.drain_ready(&mut out), 1);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn send_many_shares_one_delivery_time() {
        // A 10-message batch of 1 MB total at 100 MB/s occupies the link
        // for one 10 ms transfer, not ten serialized ones. Asserted on
        // the modeled `busy_until` (deterministic), not wall-clock
        // delivery, which a loaded 1-core host can delay arbitrarily.
        let spec = LinkSpec {
            latency: Duration::ZERO,
            bytes_per_sec: 100.0 * 1024.0 * 1024.0,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 16);
        let start = Instant::now();
        tx.send_many_blocking((0..10u8).collect(), 1024 * 1024)
            .unwrap();
        let busy = tx.busy_until().expect("transfer modeled") - start;
        assert!(
            busy < Duration::from_millis(50),
            "batch occupied the link per-message: {busy:?}"
        );
        let mut out = Vec::new();
        while out.len() < 10 {
            match rx.recv_blocking() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        let elapsed = start.elapsed();
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(
            elapsed >= Duration::from_millis(9),
            "too early: {elapsed:?}"
        );
    }

    #[test]
    fn send_pipelined_keeps_per_item_transfers() {
        // Two 10 ms transfers shipped with one call still serialize on
        // the link: the first is deliverable ~10 ms in, the second ~20 ms
        // — so a consumer can overlap work with the in-flight remainder.
        let spec = LinkSpec {
            latency: Duration::ZERO,
            bytes_per_sec: 100.0 * 1024.0 * 1024.0,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 16);
        let start = Instant::now();
        tx.send_pipelined_blocking([(1u8, 1024 * 1024), (2u8, 1024 * 1024)])
            .unwrap();
        let busy = tx.busy_until().expect("transfers modeled") - start;
        assert!(
            busy >= Duration::from_millis(18),
            "transfers overlapped on the link: {busy:?}"
        );
        assert_eq!(rx.recv_blocking(), Some(1));
        assert_eq!(rx.recv_blocking(), Some(2));
        assert!(start.elapsed() >= Duration::from_millis(18));
    }

    #[test]
    fn send_many_reports_disconnect_with_remainder() {
        let (mut tx, rx) = SimLink::channel::<u8>(LinkSpec::instant(), 4);
        drop(rx);
        assert_eq!(tx.send_many_blocking(vec![1, 2, 3], 30), Err(3));
    }

    #[test]
    fn drain_ready_max_caps_the_chunk() {
        let (mut tx, mut rx) = SimLink::channel(LinkSpec::instant(), 16);
        tx.send_many_blocking((0..10u32).collect(), 0).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.drain_ready_max(&mut out, 4), 4);
        assert_eq!(rx.drain_ready_max(&mut out, 100), 6);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.drain_ready_max(&mut out, 4), 0);
    }

    #[test]
    fn dropped_sends_succeed_but_never_arrive() {
        let faults = FaultSpec::new(5).drop_prob(1.0);
        let (mut tx, mut rx) = SimLink::faulty_channel(LinkSpec::instant(), 8, faults);
        for i in 0..10u8 {
            tx.send_blocking(i, 1).unwrap();
        }
        assert_eq!(rx.try_recv(), Err(RecvState::Empty));
        assert_eq!(tx.fault_stats().dropped, 10);
        assert_eq!(tx.fault_stats().delivered, 0);
    }

    #[test]
    fn cut_link_fails_sends_like_disconnect() {
        let faults = FaultSpec::new(5).cut_after_msgs(2);
        let (mut tx, mut rx) = SimLink::faulty_channel(LinkSpec::instant(), 8, faults);
        tx.send_blocking(1u8, 1).unwrap();
        tx.send_blocking(2u8, 1).unwrap();
        assert_eq!(tx.send_blocking(3u8, 1), Err(3));
        // The two pre-cut messages still arrive; the receiver then just
        // sees silence (the sender is alive, the link is dark).
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(RecvState::Empty));
    }

    #[test]
    fn delay_spike_stretches_instant_links() {
        let faults = FaultSpec::new(5).delay(1.0, Duration::from_millis(20));
        let (mut tx, mut rx) = SimLink::faulty_channel(LinkSpec::instant(), 8, faults);
        tx.send_blocking(9u8, 1).unwrap();
        assert!(matches!(rx.try_recv(), Err(RecvState::NotReady(_))));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(rx.try_recv(), Ok(9));
        assert_eq!(tx.fault_stats().delayed, 1);
    }

    #[test]
    fn pipelined_send_reports_cut_remainder() {
        let faults = FaultSpec::new(5).cut_after_msgs(1);
        let (mut tx, _rx) = SimLink::faulty_channel(LinkSpec::instant(), 8, faults);
        let items: Vec<(u8, usize)> = (0..5).map(|i| (i, 1)).collect();
        assert_eq!(tx.send_pipelined_blocking(items), Err(4));
    }

    #[test]
    fn recv_deadline_times_out_then_delivers() {
        let (mut tx, mut rx) = SimLink::channel::<u8>(LinkSpec::instant(), 8);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(rx.recv_deadline(deadline), DeadlineRecv::TimedOut);
        tx.send_blocking(4u8, 1).unwrap();
        let deadline = Instant::now() + Duration::from_millis(100);
        assert_eq!(rx.recv_deadline(deadline), DeadlineRecv::Msg(4));
        drop(tx);
        let deadline = Instant::now() + Duration::from_millis(100);
        assert_eq!(rx.recv_deadline(deadline), DeadlineRecv::Disconnected);
    }

    #[test]
    fn recv_deadline_expires_on_in_flight_message() {
        let spec = LinkSpec {
            latency: Duration::from_millis(50),
            bytes_per_sec: f64::INFINITY,
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel(spec, 8);
        tx.send(1u8, 0).unwrap();
        // Delivery is 50ms out; a 5ms deadline must not wait for it.
        let start = Instant::now();
        let got = rx.recv_deadline(start + Duration::from_millis(5));
        assert_eq!(got, DeadlineRecv::TimedOut);
        assert!(start.elapsed() < Duration::from_millis(45));
    }

    #[test]
    fn transfer_time_math() {
        let spec = LinkSpec {
            latency: Duration::ZERO,
            bytes_per_sec: 1000.0,
            offload: false,
        };
        assert_eq!(spec.transfer_time(500), Duration::from_millis(500));
        assert_eq!(LinkSpec::instant().transfer_time(1 << 30), Duration::ZERO);
    }
}
