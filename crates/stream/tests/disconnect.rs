//! Disconnect-path coverage (PR 8 satellite): every blocking consumer of
//! a modeled link must treat the other side vanishing *mid-burst* as
//! graceful teardown — `Err`/`None`, never a panic, never a hang. These
//! are exactly the paths a promotion exercises: the new primary drops its
//! follower-facing links while the ex-primary (or a lagging requester) is
//! still mid-send.

use std::thread;
use std::time::{Duration, Instant};

use anydb_stream::link::DeadlineRecv;
use anydb_stream::remote::scan_connection;
use anydb_stream::{FaultSpec, LinkSpec, SimLink};
use bytes::Bytes;

/// A link spec slow enough that a burst is still in flight when the
/// other end disappears, fast enough for a 1-core CI host.
fn slow() -> LinkSpec {
    LinkSpec {
        latency: Duration::from_micros(200),
        bytes_per_sec: 50.0 * 1024.0 * 1024.0,
        offload: false,
    }
}

#[test]
fn sender_burst_survives_receiver_drop_mid_burst() {
    // Small ring so the sender is actually blocked on backpressure when
    // the receiver goes away.
    let (mut tx, mut rx) = SimLink::channel::<u64>(slow(), 4);
    let producer = thread::spawn(move || {
        let mut sent = 0u64;
        for i in 0..10_000u64 {
            match tx.send_blocking(i, 64) {
                Ok(()) => sent += 1,
                Err(returned) => {
                    // Graceful teardown: the refused item comes back.
                    assert_eq!(returned, i);
                    return sent;
                }
            }
        }
        sent
    });
    // Consume a little, then vanish mid-burst.
    for _ in 0..16 {
        if rx.recv_blocking().is_none() {
            break;
        }
    }
    drop(rx);
    let sent = producer.join().expect("producer must not panic");
    assert!(sent < 10_000, "receiver drop never surfaced to the sender");
}

#[test]
fn receiver_drains_tail_then_sees_none_after_sender_drop() {
    let (mut tx, mut rx) = SimLink::channel::<u64>(slow(), 64);
    let producer = thread::spawn(move || {
        for i in 0..40u64 {
            tx.send_blocking(i, 256).unwrap();
        }
        // Sender drops here with messages still in flight.
    });
    producer.join().unwrap();
    let mut got = Vec::new();
    // recv_blocking must hand over every in-flight message, then report
    // end-of-stream — not hang waiting for a sender that is gone.
    while let Some(v) = rx.recv_blocking() {
        got.push(v);
    }
    assert_eq!(got, (0..40).collect::<Vec<_>>());
}

#[test]
fn send_many_mid_burst_disconnect_reports_remainder() {
    let (mut tx, mut rx) = SimLink::channel::<u32>(slow(), 4);
    let producer = thread::spawn(move || {
        let mut shipped = 0usize;
        loop {
            match tx.send_many_blocking((0..8u32).collect(), 8 * 1024) {
                Ok(()) => shipped += 8,
                Err(remaining) => {
                    assert!(remaining > 0 && remaining <= 8);
                    return shipped;
                }
            }
        }
    });
    for _ in 0..12 {
        if rx.recv_blocking().is_none() {
            break;
        }
    }
    drop(rx);
    producer.join().expect("bulk sender must not panic");
}

#[test]
fn pipelined_mid_burst_disconnect_reports_remainder() {
    let (mut tx, mut rx) = SimLink::channel::<u32>(slow(), 4);
    let producer = thread::spawn(move || loop {
        let burst: Vec<(u32, usize)> = (0..8u32).map(|i| (i, 4 * 1024)).collect();
        if let Err(remaining) = tx.send_pipelined_blocking(burst) {
            assert!(remaining > 0 && remaining <= 8);
            return;
        }
    });
    for _ in 0..12 {
        if rx.recv_blocking().is_none() {
            break;
        }
    }
    drop(rx);
    producer.join().expect("pipelined sender must not panic");
}

#[test]
fn recv_deadline_handles_sender_drop_while_waiting() {
    let (tx, mut rx) = SimLink::channel::<u8>(slow(), 4);
    let dropper = thread::spawn(move || {
        thread::sleep(Duration::from_millis(20));
        drop(tx);
    });
    // Generous deadline: the outcome must be Disconnected (the drop
    // arrives first), not a timeout and certainly not a hang.
    let got = rx.recv_deadline(Instant::now() + Duration::from_secs(10));
    assert_eq!(got, DeadlineRecv::Disconnected);
    dropper.join().unwrap();
}

#[test]
fn scan_requester_mid_burst_responder_drop_is_an_err() {
    let (mut requester, mut responder) = scan_connection(slow(), 4);
    let storage = thread::spawn(move || {
        // Serve one request, then crash (drop) with more inbound.
        let _ = responder.recv_request_blocking();
    });
    let mut refused = false;
    for _ in 0..1_000 {
        if requester
            .send_request(Bytes::from_static(b"scan-me"))
            .is_err()
        {
            refused = true;
            break;
        }
    }
    storage.join().expect("responder must not panic");
    assert!(refused, "responder drop never surfaced to the requester");
}

#[test]
fn scan_responder_mid_burst_requester_drop_is_an_err() {
    let (requester, mut responder) = scan_connection(slow(), 4);
    drop(requester);
    // No requests will ever arrive…
    assert!(responder.recv_request_blocking().is_none());
    // …and reply bursts are refused with the undelivered count.
    let frames = (0..8).map(|_| Bytes::from_static(b"reply-frame"));
    match responder.send_replies(frames) {
        Err(n) => assert!(n > 0 && n <= 8),
        Ok(()) => panic!("burst to a dropped requester reported success"),
    }
}

#[test]
fn faulty_link_disconnect_still_graceful() {
    // Faults and disconnects compose: a lossy link whose receiver drops
    // mid-burst still tears down with Err, and dropped messages still
    // count as successes (lossy-link semantics).
    let faults = FaultSpec::new(11).drop_prob(0.5);
    let (mut tx, rx) = SimLink::faulty_channel::<u64>(LinkSpec::instant(), 4, faults);
    drop(rx);
    let mut outcome = None;
    for i in 0..64u64 {
        match tx.send_blocking(i, 8) {
            Ok(()) => {} // fault-dropped: consumed, no receiver needed
            Err(v) => {
                outcome = Some(v);
                break;
            }
        }
    }
    assert!(
        outcome.is_some(),
        "disconnect never surfaced on faulty link"
    );
    let stats = tx.fault_stats();
    assert!(stats.dropped > 0, "p=0.5 of 64 sends dropped none");
}
