//! Property tests for the streaming substrate.

use anydb_common::{ColPredicate, ColumnBatch, DataType, Tuple, Value};
use anydb_stream::adaptive::AdaptiveBatch;
use anydb_stream::batch::Batch;
use anydb_stream::flow::Flow;
use anydb_stream::inbox::Inbox;
use anydb_stream::link::{LinkSpec, SimLink};
use anydb_stream::spsc::{spsc_channel, PopState};
use crossbeam::channel::{unbounded, TryRecvError};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch splitting conserves every tuple in order.
    #[test]
    fn batch_split_conserves(values in prop::collection::vec(any::<i64>(), 0..200), rows in 1usize..64) {
        let tuples: Vec<Tuple> = values.iter().map(|v| Tuple::new(vec![Value::Int(*v)])).collect();
        let batches = Batch::split(tuples.clone(), rows);
        let rejoined: Vec<Tuple> = batches.into_iter().flat_map(Batch::into_tuples).collect();
        prop_assert_eq!(rejoined, tuples);
    }

    /// The zero-copy producer path conserves data: a columnar scan's
    /// worth split into view batches and shipped through a `ColFlowSender`
    /// delivers the same rows in order, and models the same wire bytes as
    /// the views themselves report.
    #[test]
    fn col_flow_split_views_conserve_rows_and_bytes(
        values in prop::collection::vec(any::<i64>(), 0..120), batch_rows in 1usize..48,
    ) {
        use anydb_stream::flow::ColFlowSender;
        let tuples: Vec<Tuple> = values.iter().map(|v| Tuple::new(vec![Value::Int(*v), Value::str("p")])).collect();
        let batch = ColumnBatch::from_tuples(&[DataType::Int, DataType::Str], &tuples).unwrap();
        let expected_bytes: usize = batch.clone().split(batch_rows).iter().map(ColumnBatch::bytes).sum();
        let (tx, mut rx) = SimLink::channel::<ColumnBatch>(LinkSpec::instant(), 1 << 12);
        let mut sender = ColFlowSender::new(tx, Flow::identity());
        let sent = sender.send_split_blocking(batch, batch_rows).unwrap();
        prop_assert_eq!(sent, values.len().div_ceil(batch_rows));
        drop(sender);
        let mut got = Vec::new();
        let mut got_bytes = 0usize;
        while let Ok(b) = rx.try_recv() {
            got_bytes += b.bytes();
            got.extend(b.to_tuples());
        }
        prop_assert_eq!(got, tuples);
        prop_assert_eq!(got_bytes, expected_bytes);
    }

    /// Flows applied to zero-copy views give the same answer as flows
    /// applied to materialized copies of the same rows.
    #[test]
    fn flows_on_views_equal_flows_on_copies(
        values in prop::collection::vec(any::<i64>(), 1..80), threshold in -50i64..50,
    ) {
        let tuples: Vec<Tuple> = values.iter().map(|v| Tuple::new(vec![Value::Int(*v)])).collect();
        let batch = ColumnBatch::from_tuples(&[DataType::Int], &tuples).unwrap();
        let flow = Flow::identity().filter_col(ColPredicate::IntBetween { col: 0, min: -threshold.abs(), max: threshold.abs() });
        let (lo, hi) = (values.len() / 4, values.len() - values.len() / 4);
        let view = batch.slice(lo, hi);
        let copy = ColumnBatch::from_tuples(&[DataType::Int], &tuples[lo..hi]).unwrap();
        prop_assert_eq!(flow.apply_columns(view), flow.apply_columns(copy));
    }

    /// Flows are order-preserving filters: output is a subsequence of the
    /// input and exactly the tuples matching the predicate.
    #[test]
    fn flow_filter_is_exact(values in prop::collection::vec(any::<i64>(), 0..100), threshold in any::<i64>()) {
        let flow = Flow::identity().filter(move |t| t.get(0).as_int().unwrap() >= threshold);
        let batch = Batch::new(values.iter().map(|v| Tuple::new(vec![Value::Int(*v)])).collect());
        let out = flow.apply(batch);
        let got: Vec<i64> = out.tuples().iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let expected: Vec<i64> = values.iter().copied().filter(|v| *v >= threshold).collect();
        prop_assert_eq!(got, expected);
    }

    /// Row-`Batch` ↔ `ColumnBatch` conversion roundtrips (values incl.
    /// nulls), and for null-free batches of a few rows or more the
    /// columnar wire model beats the row model — the point of one tag
    /// per column. (With nulls the row codec can win: it spends 1 byte
    /// per null where the columnar layout packs an 8-byte placeholder.)
    #[test]
    fn column_batch_roundtrips_row_batch(
        rows in prop::collection::vec((any::<i64>(), prop::option::of(0u8..26), any::<bool>()), 0..80),
    ) {
        let tuples: Vec<Tuple> = rows.iter().map(|(i, s, null_float)| {
            Tuple::new(vec![
                Value::Int(*i),
                match s {
                    Some(c) => Value::str(String::from(char::from(b'a' + c))),
                    None => Value::Null,
                },
                if *null_float { Value::Null } else { Value::Float(*i as f64) },
            ])
        }).collect();
        let batch = Batch::new(tuples);
        let types = [DataType::Int, DataType::Str, DataType::Float];
        let cols = ColumnBatch::from_tuples(&types, batch.tuples()).unwrap();
        prop_assert_eq!(cols.rows(), batch.len());
        let back = Batch::new(cols.to_tuples());
        prop_assert_eq!(back.tuples(), batch.tuples());
        prop_assert_eq!(back.bytes(), batch.bytes());
        let has_nulls = batch.tuples().iter().any(|t| t.values().iter().any(Value::is_null));
        if !has_nulls && batch.len() >= 4 {
            prop_assert!(cols.bytes() < batch.bytes());
        }
    }

    /// A columnar flow (vectorized filter + projection) agrees with the
    /// row flow applying the same stages, for any threshold.
    #[test]
    fn columnar_flow_agrees_with_row_flow(values in prop::collection::vec(any::<i64>(), 0..100), threshold in any::<i64>()) {
        let flow = Flow::identity()
            .filter_col(ColPredicate::IntGe { col: 0, min: threshold })
            .project(vec![1]);
        let tuples: Vec<Tuple> = values
            .iter()
            .map(|v| Tuple::new(vec![Value::Int(*v), Value::Int(v.wrapping_mul(3))]))
            .collect();
        let cols = ColumnBatch::from_tuples(&[DataType::Int, DataType::Int], &tuples).unwrap();
        let row_out = flow.apply(Batch::new(tuples));
        let col_out = flow.apply_columns(cols);
        prop_assert_eq!(col_out.to_tuples(), row_out.tuples());
    }

    /// Bulk SPSC transfer round-trips any payload exactly once, in order,
    /// for any ring capacity and any interleaving of bulk push/pop sizes —
    /// including partial batches that straddle the ring's wrap-around.
    #[test]
    fn spsc_bulk_roundtrip(
        cap in 1usize..17,
        payload in prop::collection::vec(any::<i64>(), 0..300),
        sizes in prop::collection::vec((1usize..9, 1usize..9), 1..64),
    ) {
        let (mut tx, mut rx) = spsc_channel::<i64>(cap);
        let mut sent = 0usize;
        let mut got: Vec<i64> = Vec::new();
        let mut out: Vec<i64> = Vec::new();
        let mut step = 0usize;
        // Alternate bulk pushes and bounded bulk pops until the payload is
        // fully transferred; sizes deliberately disagree with `cap` so
        // partial batches and wrap-around occur constantly.
        while got.len() < payload.len() {
            let (push_n, pop_n) = sizes[step % sizes.len()];
            step += 1;
            if sent < payload.len() {
                let hi = (sent + push_n).min(payload.len());
                sent += tx.push_slice(&payload[sent..hi]).unwrap();
            }
            out.clear();
            match rx.pop_chunk(&mut out, pop_n) {
                Ok(n) => {
                    prop_assert!(n > 0 && n <= pop_n);
                    prop_assert_eq!(n, out.len());
                    got.extend_from_slice(&out);
                }
                Err(PopState::Empty) => {}
                Err(PopState::Disconnected) => unreachable!("producer alive"),
            }
        }
        prop_assert_eq!(got, payload);
    }

    /// A consumer disconnect mid-batch loses nothing that was accepted:
    /// push_slice reports Disconnected without taking elements, and
    /// everything accepted earlier is dropped safely with the ring.
    #[test]
    fn spsc_disconnect_mid_batch(
        cap in 1usize..16,
        first in prop::collection::vec(any::<u32>(), 0..32),
        second in prop::collection::vec(any::<u32>(), 1..32),
    ) {
        let (mut tx, rx) = spsc_channel::<u32>(cap);
        let taken = tx.push_slice(&first).unwrap();
        prop_assert_eq!(taken, first.len().min(cap));
        drop(rx);
        prop_assert_eq!(tx.push_slice(&second), Err(PopState::Disconnected));
        let mut rest = second.clone();
        prop_assert_eq!(tx.push_drain(&mut rest), Err(PopState::Disconnected));
        prop_assert_eq!(rest.len(), second.len());
    }

    /// Inbox bulk send/drain conserves every event and preserves order,
    /// for any chunking on either side; a drain after the last sender
    /// drops still surfaces queued events before reporting disconnect.
    #[test]
    fn inbox_bulk_roundtrip(
        payload in prop::collection::vec(any::<i64>(), 0..300),
        send_chunk in 1usize..33,
        drain_chunk in 1usize..33,
    ) {
        let (tx, rx) = Inbox::<i64>::new();
        for chunk in payload.chunks(send_chunk) {
            tx.send_many(chunk.iter().copied());
        }
        drop(tx);
        let mut got = Vec::new();
        loop {
            match rx.drain_into(&mut got, drain_chunk) {
                Ok(n) => prop_assert!(n > 0 && n <= drain_chunk),
                Err(PopState::Disconnected) => break,
                Err(PopState::Empty) => unreachable!("sender already dropped"),
            }
        }
        prop_assert_eq!(got, payload);
    }

    /// Bulk channel receive (`try_recv_many`) returns exactly what a
    /// sequence of singleton `try_recv`s would: same elements, same
    /// order, no loss, no duplication — for any interleaving of the two
    /// receive forms and any chunk sizes.
    #[test]
    fn try_recv_many_matches_singleton_try_recv(
        payload in prop::collection::vec(any::<i64>(), 0..300),
        steps in prop::collection::vec((any::<bool>(), 1usize..17), 1..64),
    ) {
        let (tx, rx) = unbounded();
        for v in &payload {
            tx.send(*v).unwrap();
        }
        drop(tx);
        let mut got: Vec<i64> = Vec::new();
        let mut out: Vec<i64> = Vec::new();
        let mut step = 0usize;
        loop {
            let (bulk, max) = steps[step % steps.len()];
            step += 1;
            if bulk {
                out.clear();
                match rx.try_recv_many(&mut out, max) {
                    Ok(n) => {
                        prop_assert!(n > 0 && n <= max);
                        prop_assert_eq!(n, out.len());
                        got.extend_from_slice(&out);
                    }
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => unreachable!("sender dropped"),
                }
            } else {
                match rx.try_recv() {
                    Ok(v) => got.push(v),
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => unreachable!("sender dropped"),
                }
            }
        }
        prop_assert_eq!(got, payload);
    }

    /// The adaptive batch controller never leaves its `[min, max]` range,
    /// whatever depth sequence it observes.
    #[test]
    fn adaptive_batch_stays_in_bounds(
        min in 1usize..16,
        span in 0usize..9,
        depths in prop::collection::vec(any::<usize>(), 0..200),
    ) {
        let max = min << span; // power-of-two span keeps ranges honest
        let mut ctrl = AdaptiveBatch::new(min, max);
        for d in depths {
            let cur = ctrl.observe(d);
            prop_assert!(cur >= min && cur <= max, "current {cur} outside [{min}, {max}]");
            prop_assert_eq!(cur, ctrl.current());
        }
    }

    /// Whatever state load drove it to, a drained (depth 0) queue decays
    /// the controller back to its floor within log2(max) observations —
    /// the idle-latency guarantee.
    #[test]
    fn adaptive_batch_decays_to_floor_when_idle(
        max in 1usize..4096,
        depths in prop::collection::vec(any::<usize>(), 0..64),
    ) {
        let mut ctrl = AdaptiveBatch::new(1, max);
        for d in depths {
            ctrl.observe(d);
        }
        // usize::BITS zero-samples bound log2 of any reachable state.
        for _ in 0..usize::BITS {
            ctrl.observe(0);
        }
        prop_assert_eq!(ctrl.current(), 1);
    }

    /// Links deliver every message exactly once in order for arbitrary
    /// latency/bandwidth settings (within quick test ranges).
    #[test]
    fn link_is_fifo_and_lossless(
        n in 1usize..64,
        latency_us in 0u64..200,
        bw in prop::option::of(1e6f64..1e9),
    ) {
        let spec = LinkSpec {
            latency: Duration::from_micros(latency_us),
            bytes_per_sec: bw.unwrap_or(f64::INFINITY),
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel::<usize>(spec, n.max(1));
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.send_blocking(i, 64).unwrap();
            }
        });
        for i in 0..n {
            prop_assert_eq!(rx.recv_blocking(), Some(i));
        }
        prop_assert_eq!(rx.recv_blocking(), None);
        producer.join().unwrap();
    }
}
