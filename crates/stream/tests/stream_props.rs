//! Property tests for the streaming substrate.

use anydb_common::{Tuple, Value};
use anydb_stream::batch::Batch;
use anydb_stream::flow::Flow;
use anydb_stream::link::{LinkSpec, SimLink};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch splitting conserves every tuple in order.
    #[test]
    fn batch_split_conserves(values in prop::collection::vec(any::<i64>(), 0..200), rows in 1usize..64) {
        let tuples: Vec<Tuple> = values.iter().map(|v| Tuple::new(vec![Value::Int(*v)])).collect();
        let batches = Batch::split(tuples.clone(), rows);
        let rejoined: Vec<Tuple> = batches.into_iter().flat_map(Batch::into_tuples).collect();
        prop_assert_eq!(rejoined, tuples);
    }

    /// Flows are order-preserving filters: output is a subsequence of the
    /// input and exactly the tuples matching the predicate.
    #[test]
    fn flow_filter_is_exact(values in prop::collection::vec(any::<i64>(), 0..100), threshold: i64) {
        let flow = Flow::identity().filter(move |t| t.get(0).as_int().unwrap() >= threshold);
        let batch = Batch::new(values.iter().map(|v| Tuple::new(vec![Value::Int(*v)])).collect());
        let out = flow.apply(batch);
        let got: Vec<i64> = out.tuples().iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let expected: Vec<i64> = values.iter().copied().filter(|v| *v >= threshold).collect();
        prop_assert_eq!(got, expected);
    }

    /// Links deliver every message exactly once in order for arbitrary
    /// latency/bandwidth settings (within quick test ranges).
    #[test]
    fn link_is_fifo_and_lossless(
        n in 1usize..64,
        latency_us in 0u64..200,
        bw in prop::option::of(1e6f64..1e9),
    ) {
        let spec = LinkSpec {
            latency: Duration::from_micros(latency_us),
            bytes_per_sec: bw.unwrap_or(f64::INFINITY),
            offload: false,
        };
        let (mut tx, mut rx) = SimLink::channel::<usize>(spec, n.max(1));
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                tx.send_blocking(i, 64).unwrap();
            }
        });
        for i in 0..n {
            prop_assert_eq!(rx.recv_blocking(), Some(i));
        }
        prop_assert_eq!(rx.recv_blocking(), None);
        producer.join().unwrap();
    }
}
