//! In-process OLAP execution for the baseline: CH-benCHmark Q3 executed
//! with plain scans and hash joins on the calling thread.
//!
//! This is deliberately the *coupled* design the paper criticizes: when a
//! TE thread runs this query it is not executing transactions, which is
//! what drags DBx1000's OLTP throughput down in the HTAP phases of
//! Figure 1.

use anydb_common::fxmap::FxHashSet;
use anydb_common::PartitionId;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::tpcc::TpccDb;

/// Executes Q3 and returns the number of qualifying open orders.
pub fn exec_q3(db: &TpccDb, spec: &Q3Spec) -> usize {
    // Scan 1: qualifying customers -> join-key set (build side 1).
    let mut cust_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.customer.partition_count() {
        if let Ok(part) = db.customer.partition(PartitionId(p)) {
            part.scan(|_, row| {
                if spec.customer_filter(row.tuple()) {
                    cust_keys.insert(Q3Spec::customer_join_key(row.tuple()));
                }
            });
        }
    }

    // Scan 2 + join 1: qualifying orders of qualifying customers (build
    // side 2).
    let mut order_keys: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
    for p in 0..db.orders.partition_count() {
        if let Ok(part) = db.orders.partition(PartitionId(p)) {
            part.scan(|_, row| {
                let t = row.tuple();
                if spec.order_filter(t) && cust_keys.contains(&Q3Spec::order_customer_key(t)) {
                    order_keys.insert(Q3Spec::order_key(t));
                }
            });
        }
    }

    // Scan 3 + join 2: probe new-order against the order set.
    let mut hits = 0usize;
    for p in 0..db.neworder.partition_count() {
        if let Ok(part) = db.neworder.partition(PartitionId(p)) {
            part.scan(|_, row| {
                if order_keys.contains(&Q3Spec::neworder_key(row.tuple())) {
                    hits += 1;
                }
            });
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::Tuple;
    use anydb_workload::chbench::reference_q3;
    use anydb_workload::tpcc::TpccConfig;

    fn collect_all(table: &anydb_storage::Table) -> Vec<Tuple> {
        let mut out = Vec::new();
        for p in 0..table.partition_count() {
            out.extend(
                table
                    .partition(PartitionId(p))
                    .unwrap()
                    .collect_matching(|_| true),
            );
        }
        out
    }

    #[test]
    fn matches_reference_oracle() {
        let db = TpccDb::load(TpccConfig::small(), 21).unwrap();
        let spec = Q3Spec::default();
        let got = exec_q3(&db, &spec);
        let expected = reference_q3(
            &spec,
            &collect_all(&db.customer),
            &collect_all(&db.orders),
            &collect_all(&db.neworder),
        );
        assert_eq!(got, expected);
        assert!(got > 0);
    }

    #[test]
    fn empty_date_range_yields_zero() {
        let db = TpccDb::load(TpccConfig::small(), 22).unwrap();
        let spec = Q3Spec {
            entry_date_min: 99_99_99_99,
            ..Q3Spec::default()
        };
        assert_eq!(exec_q3(&db, &spec), 0);
    }
}
