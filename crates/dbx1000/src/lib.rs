//! # anydb-dbx1000
//!
//! A from-scratch reimplementation of the *static* baseline the paper
//! compares against: a DBx1000-style main-memory DBMS with a fixed
//! shared-nothing architecture (see DESIGN.md §2 for the substitution
//! rationale).
//!
//! Structure:
//!
//! * a fixed pool of **transaction executor (TE)** threads pulling client
//!   requests from a shared queue,
//! * record-level two-phase locking with the wait-die policy
//!   ([`anydb_txn::lock`]) — the configuration whose contention collapse
//!   Figure 5 shows ("4 TEs perform like a single TE"),
//! * OLAP queries execute **on the same TEs** as transactions — the
//!   resource coupling that costs DBx1000 OLTP throughput in the HTAP
//!   phases of Figure 1, and which AnyDB avoids by routing analytics to
//!   disaggregated ACs.
//!
//! The baseline shares the storage substrate (`anydb-storage`) and the
//! workload generators (`anydb-workload`) with AnyDB, so figure
//! comparisons measure architecture, not implementation quality.

pub mod engine;
pub mod olap;
pub mod txns;

pub use engine::{Dbx1000, Dbx1000Config, PhaseResult};
pub use olap::exec_q3;
