//! TPC-C payment and new-order execution under two-phase locking.
//!
//! These are the classic single-threaded transaction bodies: acquire
//! record locks as data is touched (growing phase), apply all writes,
//! release everything at the end (shrinking phase at commit). Wait-die
//! resolves conflicts; callers retry aborted transactions with a fresh,
//! *younger* id.

use anydb_common::Tuple;
use anydb_common::{DbError, DbResult, Rid, TxnId, Value};
use anydb_txn::history::History;
use anydb_txn::lock::{LockManager, LockMode, LockPolicy};
use anydb_workload::tpcc::cols::{customer, district, stock, warehouse};
use anydb_workload::tpcc::{CustomerSelector, NewOrderParams, PaymentParams, TpccDb};

/// Shared context for transaction execution.
pub struct TxnCtx<'a> {
    /// The loaded database.
    pub db: &'a TpccDb,
    /// The global lock manager.
    pub locks: &'a LockManager,
    /// Lock policy (wait-die for the baseline).
    pub policy: LockPolicy,
    /// Optional operation history for serializability checking.
    pub history: Option<&'a History>,
}

impl<'a> TxnCtx<'a> {
    fn lock(&self, txn: TxnId, rid: Rid, mode: LockMode, held: &mut Vec<Rid>) -> DbResult<()> {
        self.locks.acquire(txn, rid, mode, self.policy)?;
        held.push(rid);
        Ok(())
    }

    fn abort(&self, txn: TxnId, held: &[Rid]) {
        self.locks.release_all(txn, held);
    }

    fn commit(&self, txn: TxnId, held: &[Rid]) {
        self.locks.release_all(txn, held);
    }
}

/// Resolves the payment customer to a RID. By-last-name selection scans
/// the secondary index and picks the middle match ordered by first name
/// (TPC-C §2.5.2.2) — the "long range scan" of Figure 4 (d).
pub fn resolve_customer(
    db: &TpccDb,
    c_w_id: i64,
    c_d_id: i64,
    selector: &CustomerSelector,
) -> DbResult<Rid> {
    match selector {
        CustomerSelector::ById(c_id) => db.customer_rid(c_w_id, c_d_id, *c_id),
        CustomerSelector::ByLastName(name) => {
            let rids = db.customers_by_last_name(c_w_id, c_d_id, name)?;
            if rids.is_empty() {
                return Err(DbError::KeyNotFound(db.customer.id()));
            }
            // Order candidates by c_first and take the middle one. As in
            // the architecture-less engine's copy of this scan: string
            // values are `Arc<str>`, so cloning the `Value` out of the
            // row is a refcount bump, not a per-candidate `String` copy.
            let mut named: Vec<(Value, Rid)> = rids
                .into_iter()
                .map(|rid| {
                    let first = db
                        .customer
                        .read_with(rid, |t, _| t.get(customer::C_FIRST).clone())
                        .unwrap_or(Value::Null);
                    (first, rid)
                })
                .collect();
            named.sort_by(|(a, _), (b, _)| a.as_str().unwrap_or("").cmp(b.as_str().unwrap_or("")));
            Ok(named[named.len() / 2].1)
        }
    }
}

/// Executes one TPC-C payment transaction.
///
/// Lock acquisition is strictly separated from the write phase: wait-die
/// aborts can only happen while no write has been applied yet, so aborted
/// transactions need no undo (strict 2PL with deferred writes). On abort,
/// locks are released and the retryable error is surfaced.
pub fn exec_payment(ctx: &TxnCtx<'_>, txn: TxnId, p: &PaymentParams) -> DbResult<()> {
    let db = ctx.db;
    let mut held: Vec<Rid> = Vec::with_capacity(4);

    // Growing phase: resolve and lock everything the writes will touch.
    let locked = (|| -> DbResult<(Rid, Rid, Rid)> {
        let w_rid = db.warehouse_rid(p.w_id)?;
        ctx.lock(txn, w_rid, LockMode::Exclusive, &mut held)?;
        let d_rid = db.district_rid(p.w_id, p.d_id)?;
        ctx.lock(txn, d_rid, LockMode::Exclusive, &mut held)?;
        let c_rid = resolve_customer(db, p.c_w_id, p.c_d_id, &p.customer)?;
        ctx.lock(txn, c_rid, LockMode::Exclusive, &mut held)?;
        Ok((w_rid, d_rid, c_rid))
    })();
    let (w_rid, d_rid, c_rid) = match locked {
        Ok(rids) => rids,
        Err(e) => {
            ctx.abort(txn, &held);
            return Err(e);
        }
    };

    // Write phase: cannot fail with a CC abort anymore.
    let ((), wv) = db.warehouse.update(w_rid, |t| {
        let ytd = t.get(warehouse::W_YTD).as_float().unwrap_or(0.0);
        t.set(warehouse::W_YTD, Value::Float(ytd + p.amount));
    })?;
    let ((), dv) = db.district.update(d_rid, |t| {
        let ytd = t.get(district::D_YTD).as_float().unwrap_or(0.0);
        t.set(district::D_YTD, Value::Float(ytd + p.amount));
    })?;
    let (c_id, cv) = db.customer.update(c_rid, |t| {
        let bal = t.get(customer::C_BALANCE).as_float().unwrap_or(0.0);
        t.set(customer::C_BALANCE, Value::Float(bal - p.amount));
        let ytd = t.get(customer::C_YTD_PAYMENT).as_float().unwrap_or(0.0);
        t.set(customer::C_YTD_PAYMENT, Value::Float(ytd + p.amount));
        let cnt = t.get(customer::C_PAYMENT_CNT).as_int().unwrap_or(0);
        t.set(customer::C_PAYMENT_CNT, Value::Int(cnt + 1));
        t.get(customer::C_ID).as_int().unwrap_or(0)
    })?;
    if let Some(h) = ctx.history {
        h.record_write(txn, w_rid, wv);
        h.record_write(txn, d_rid, dv);
        h.record_write(txn, c_rid, cv);
    }

    // History insert (append-only: atomic, not visible via any key the
    // workload reads, so no lock is required).
    db.history.insert(Tuple::new(vec![
        Value::Int(p.w_id),
        Value::Int(db.next_history_id()),
        Value::Int(p.d_id),
        Value::Int(c_id),
        Value::Int(p.date),
        Value::Float(p.amount),
    ]))?;

    ctx.commit(txn, &held);
    Ok(())
}

/// Executes one TPC-C new-order transaction.
///
/// Same strict-2PL structure as [`exec_payment`]: every lock (district,
/// customer, all stock rows) is acquired before the first write, so CC
/// aborts and the §2.4.1.4 user rollback never require undo.
pub fn exec_new_order(ctx: &TxnCtx<'_>, txn: TxnId, p: &NewOrderParams) -> DbResult<()> {
    let db = ctx.db;
    let mut held: Vec<Rid> = Vec::with_capacity(2 + p.lines.len());

    // Growing phase.
    type Locked = (Rid, Rid, Vec<(Rid, f64)>);
    let locked = (|| -> DbResult<Locked> {
        let d_rid = db.district_rid(p.w_id, p.d_id)?;
        ctx.lock(txn, d_rid, LockMode::Exclusive, &mut held)?;
        let c_rid = db.customer_rid(p.w_id, p.d_id, p.c_id)?;
        ctx.lock(txn, c_rid, LockMode::Shared, &mut held)?;
        // TPC-C §2.4.1.4 user abort: an invalid item id is discovered
        // while assembling the lines.
        if p.rollback {
            return Err(DbError::TxnAborted(txn));
        }
        let mut stock = Vec::with_capacity(p.lines.len());
        for (item_id, qty) in &p.lines {
            let price = db.item.read_with(
                db.item.get_rid(&anydb_storage::key::int_key(*item_id))?,
                |t, _| {
                    t.get(anydb_workload::tpcc::cols::item::I_PRICE)
                        .as_float()
                        .unwrap_or(1.0)
                },
            )?;
            let s_rid = db
                .stock
                .get_rid(&anydb_storage::key::int_keys(&[p.w_id, *item_id]))?;
            ctx.lock(txn, s_rid, LockMode::Exclusive, &mut held)?;
            stock.push((s_rid, price * *qty as f64));
        }
        Ok((d_rid, c_rid, stock))
    })();
    let (d_rid, c_rid, stock) = match locked {
        Ok(v) => v,
        Err(e) => {
            ctx.abort(txn, &held);
            return Err(e);
        }
    };

    // Write phase.
    let (o_id, dv) = db.district.update(d_rid, |t| {
        let next = t.get(district::D_NEXT_O_ID).as_int().unwrap_or(1);
        t.set(district::D_NEXT_O_ID, Value::Int(next + 1));
        next
    })?;
    let cv = db.customer.read_with(c_rid, |_, v| v)?;
    if let Some(h) = ctx.history {
        h.record_write(txn, d_rid, dv);
        h.record_read(txn, c_rid, cv);
    }

    for ((s_rid, _), (_, qty)) in stock.iter().zip(&p.lines) {
        let ((), sv) = db.stock.update(*s_rid, |t| {
            let q = t.get(stock::S_QUANTITY).as_int().unwrap_or(0);
            let newq = if q - qty >= 10 { q - qty } else { q - qty + 91 };
            t.set(stock::S_QUANTITY, Value::Int(newq));
            let ytd = t.get(stock::S_YTD).as_int().unwrap_or(0);
            t.set(stock::S_YTD, Value::Int(ytd + qty));
        })?;
        if let Some(h) = ctx.history {
            h.record_write(txn, *s_rid, sv);
        }
    }

    // Order, new-order, order-line inserts.
    db.orders.insert(Tuple::new(vec![
        Value::Int(p.w_id),
        Value::Int(p.d_id),
        Value::Int(o_id),
        Value::Int(p.c_id),
        Value::Int(p.entry_date),
        Value::Null,
        Value::Int(p.lines.len() as i64),
    ]))?;
    db.neworder.insert(Tuple::new(vec![
        Value::Int(p.w_id),
        Value::Int(p.d_id),
        Value::Int(o_id),
    ]))?;
    for (i, ((item_id, qty), (_, amount))) in p.lines.iter().zip(&stock).enumerate() {
        db.orderline.insert(Tuple::new(vec![
            Value::Int(p.w_id),
            Value::Int(p.d_id),
            Value::Int(o_id),
            Value::Int(i as i64 + 1),
            Value::Int(*item_id),
            Value::Int(*qty),
            Value::Float(*amount),
        ]))?;
    }

    ctx.commit(txn, &held);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_common::dist::HotSpot;
    use anydb_txn::ts::TxnIdGen;
    use anydb_workload::tpcc::{PaymentGen, TpccConfig};

    fn setup() -> (TpccDb, LockManager, TxnIdGen) {
        (
            TpccDb::load(TpccConfig::small(), 11).unwrap(),
            LockManager::new(),
            TxnIdGen::new(),
        )
    }

    #[test]
    fn payment_moves_money() {
        let (db, locks, ids) = setup();
        let ctx = TxnCtx {
            db: &db,
            locks: &locks,
            policy: LockPolicy::WaitDie,
            history: None,
        };
        let before = db
            .warehouse
            .read(db.warehouse_rid(1).unwrap())
            .unwrap()
            .0
            .get(warehouse::W_YTD)
            .as_float()
            .unwrap();
        let p = PaymentParams {
            w_id: 1,
            d_id: 1,
            c_w_id: 1,
            c_d_id: 1,
            customer: CustomerSelector::ById(3),
            amount: 100.0,
            date: 20_200_101,
        };
        exec_payment(&ctx, ids.next(), &p).unwrap();
        let after = db
            .warehouse
            .read(db.warehouse_rid(1).unwrap())
            .unwrap()
            .0
            .get(warehouse::W_YTD)
            .as_float()
            .unwrap();
        assert!((after - before - 100.0).abs() < 1e-9);
        assert_eq!(db.history.row_count(), 1);
        // All locks released.
        assert_eq!(locks.locked_records(), 0);
    }

    #[test]
    fn payment_by_lastname_resolves_middle_customer() {
        let (db, locks, ids) = setup();
        let ctx = TxnCtx {
            db: &db,
            locks: &locks,
            policy: LockPolicy::WaitDie,
            history: None,
        };
        let p = PaymentParams {
            w_id: 1,
            d_id: 1,
            c_w_id: 1,
            c_d_id: 1,
            customer: CustomerSelector::ByLastName("BARBARBAR".into()),
            amount: 10.0,
            date: 20_200_101,
        };
        exec_payment(&ctx, ids.next(), &p).unwrap();
    }

    #[test]
    fn new_order_creates_rows_and_bumps_sequence() {
        let (db, locks, ids) = setup();
        let ctx = TxnCtx {
            db: &db,
            locks: &locks,
            policy: LockPolicy::WaitDie,
            history: None,
        };
        let orders_before = db.orders.row_count();
        let nos_before = db.neworder.row_count();
        let p = NewOrderParams {
            w_id: 2,
            d_id: 1,
            c_id: 1,
            lines: vec![(1, 2), (2, 3)],
            supply: vec![2, 2],
            entry_date: 20_200_102,
            rollback: false,
        };
        exec_new_order(&ctx, ids.next(), &p).unwrap();
        assert_eq!(db.orders.row_count(), orders_before + 1);
        assert_eq!(db.neworder.row_count(), nos_before + 1);
        assert_eq!(locks.locked_records(), 0);
    }

    #[test]
    fn new_order_rollback_leaves_no_rows() {
        let (db, locks, ids) = setup();
        let ctx = TxnCtx {
            db: &db,
            locks: &locks,
            policy: LockPolicy::WaitDie,
            history: None,
        };
        let orders_before = db.orders.row_count();
        let p = NewOrderParams {
            w_id: 1,
            d_id: 2,
            c_id: 1,
            lines: vec![(1, 1)],
            supply: vec![1],
            entry_date: 20_200_102,
            rollback: true,
        };
        assert!(exec_new_order(&ctx, ids.next(), &p).is_err());
        assert_eq!(db.orders.row_count(), orders_before);
        assert_eq!(locks.locked_records(), 0);
    }

    #[test]
    fn concurrent_payments_preserve_money_invariant() {
        // sum of warehouse YTD deltas == sum of applied amounts, under
        // full contention on warehouse 1.
        let (db, locks, ids) = setup();
        let db = std::sync::Arc::new(db);
        let locks = std::sync::Arc::new(locks);
        let ids = std::sync::Arc::new(ids);
        let total = std::sync::Arc::new(anydb_common::metrics::Counter::new());

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            let locks = locks.clone();
            let ids = ids.clone();
            let total = total.clone();
            handles.push(std::thread::spawn(move || {
                let mut gen = PaymentGen::new(
                    db.cfg.clone(),
                    HotSpot::single(db.cfg.warehouses as u64),
                    100 + t,
                );
                let ctx = TxnCtx {
                    db: &db,
                    locks: &locks,
                    policy: LockPolicy::WaitDie,
                    history: None,
                };
                let mut committed = 0u64;
                while committed < 200 {
                    let p = gen.next();
                    // fixed amount so the invariant is easy to assert
                    let p = PaymentParams { amount: 1.0, ..p };
                    if exec_payment(&ctx, ids.next(), &p).is_ok() {
                        committed += 1;
                        total.incr();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let ytd = db
            .warehouse
            .read(db.warehouse_rid(1).unwrap())
            .unwrap()
            .0
            .get(warehouse::W_YTD)
            .as_float()
            .unwrap();
        assert!((ytd - 300_000.0 - total.get() as f64).abs() < 1e-6);
    }

    #[test]
    fn contended_history_is_serializable() {
        let (db, locks, ids) = setup();
        let db = std::sync::Arc::new(db);
        let locks = std::sync::Arc::new(locks);
        let ids = std::sync::Arc::new(ids);
        let hist = std::sync::Arc::new(History::new());

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = db.clone();
            let locks = locks.clone();
            let ids = ids.clone();
            let hist = hist.clone();
            handles.push(std::thread::spawn(move || {
                let mut gen = PaymentGen::new(
                    db.cfg.clone(),
                    HotSpot::single(db.cfg.warehouses as u64),
                    200 + t,
                );
                let ctx = TxnCtx {
                    db: &db,
                    locks: &locks,
                    policy: LockPolicy::WaitDie,
                    history: Some(&hist),
                };
                let mut committed = 0;
                while committed < 100 {
                    if exec_payment(&ctx, ids.next(), &gen.next()).is_ok() {
                        committed += 1;
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            hist.is_serializable(),
            "2PL produced a non-serializable history"
        );
    }
}
