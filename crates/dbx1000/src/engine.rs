//! The baseline engine: a fixed pool of transaction-executor threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use anydb_common::metrics::Counter;
use anydb_common::DbError;
use anydb_txn::history::History;
use anydb_txn::lock::{LockManager, LockPolicy};
use anydb_txn::ts::TxnIdGen;
use anydb_workload::chbench::Q3Spec;
use anydb_workload::phases::{Phase, PhaseKind, PhaseSchedule};
use anydb_workload::tpcc::gen::{MixGen, TxnRequest};
use anydb_workload::tpcc::TpccDb;

use crate::olap::exec_q3;
use crate::txns::{exec_new_order, exec_payment, TxnCtx};

/// Configuration of the static baseline.
#[derive(Debug, Clone)]
pub struct Dbx1000Config {
    /// Number of transaction-executor threads (the "4TE"/"1TE" of Fig. 5).
    pub executors: u32,
    /// Lock conflict policy.
    pub policy: LockPolicy,
    /// Fraction of payment transactions in the mix (1.0 = payment-only,
    /// as in Figure 5).
    pub payment_fraction: f64,
}

impl Default for Dbx1000Config {
    fn default() -> Self {
        Self {
            executors: 4,
            policy: LockPolicy::WaitDie,
            payment_fraction: 0.5,
        }
    }
}

/// Result of one workload phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseResult {
    /// Completed transactions (including TPC-C user rollbacks).
    pub committed: u64,
    /// Concurrency-control aborts (wait-die / no-wait retries).
    pub cc_aborts: u64,
    /// OLAP queries completed during the phase.
    pub olap_queries: u64,
    /// Wall-clock phase duration.
    pub elapsed: Duration,
}

impl PhaseResult {
    /// OLTP throughput in transactions per second.
    pub fn tx_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }
}

/// The DBx1000-style static shared-nothing baseline.
pub struct Dbx1000 {
    db: Arc<TpccDb>,
    locks: Arc<LockManager>,
    ids: Arc<TxnIdGen>,
    cfg: Dbx1000Config,
    history: Option<Arc<History>>,
}

impl Dbx1000 {
    /// Creates the engine over a loaded database.
    pub fn new(db: Arc<TpccDb>, cfg: Dbx1000Config) -> Self {
        Self {
            db,
            locks: Arc::new(LockManager::new()),
            ids: Arc::new(TxnIdGen::new()),
            cfg,
            history: None,
        }
    }

    /// Attaches an operation history (serializability tests).
    pub fn with_history(mut self, history: Arc<History>) -> Self {
        self.history = Some(history);
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &Arc<TpccDb> {
        &self.db
    }

    /// Runs one phase for `duration`, returning throughput counters.
    ///
    /// The baseline is *statically partitioned* (shared-nothing): TE `i`
    /// owns the warehouses with `(w-1) % executors == i` and clients route
    /// requests to the owning TE. Under a partitionable load this scales
    /// linearly and conflict-free; under the skewed load (everything on
    /// warehouse 1) only the owning TE has work — exactly the paper's
    /// "DBx1000 is bound by the resources that are assigned to one
    /// partition" and why "4 TEs perform like a single TE" in Figure 5.
    /// Record locks stay on (the engine is lock-based like DBx1000), they
    /// are just conflict-free under partitioned routing.
    ///
    /// In HTAP phases exactly one TE at a time additionally executes the
    /// CH-Q3 query, round-robin — the paper's point that the static
    /// design shares transaction resources with analytics.
    pub fn run_phase(&self, kind: PhaseKind, duration: Duration, seed: u64) -> PhaseResult {
        let stop = AtomicBool::new(false);
        let committed = Counter::new();
        let cc_aborts = Counter::new();
        let olap_done = Counter::new();
        let olap_turn = AtomicU64::new(0);
        let started = Instant::now();

        std::thread::scope(|scope| {
            for te in 0..self.cfg.executors {
                let stop = &stop;
                let committed = &committed;
                let cc_aborts = &cc_aborts;
                let olap_done = &olap_done;
                let olap_turn = &olap_turn;
                let db = &self.db;
                let locks = &self.locks;
                let ids = &self.ids;
                let history = self.history.as_deref();
                let cfg = &self.cfg;
                scope.spawn(move || {
                    let mut gen = MixGen::new(
                        db.cfg.clone(),
                        kind.warehouse_dist(db.cfg.warehouses),
                        cfg.payment_fraction,
                        seed ^ (te as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    let ctx = TxnCtx {
                        db,
                        locks,
                        policy: cfg.policy,
                        history,
                    };
                    let q3 = Q3Spec::default();
                    let executors = cfg.executors as i64;
                    let owns = |w: i64| ((w - 1).rem_euclid(executors)) as u32 == te;
                    let mut idle = anydb_common::backoff::Backoff::new();
                    while !stop.load(Ordering::Relaxed) {
                        // HTAP: take the OLAP token if it is this TE's turn.
                        if kind.has_olap() {
                            let turn = olap_turn.load(Ordering::Relaxed);
                            if turn % cfg.executors as u64 == te as u64
                                && olap_turn
                                    .compare_exchange(
                                        turn,
                                        turn + 1,
                                        Ordering::AcqRel,
                                        Ordering::Relaxed,
                                    )
                                    .is_ok()
                            {
                                exec_q3(db, &q3);
                                olap_done.incr();
                                continue;
                            }
                        }
                        // Static partitioning: sample the home warehouse
                        // first (cheap); foreign requests are handled by
                        // their owning TE, so this TE is *idle* for them
                        // and must park rather than burn a core.
                        let w = gen.next_warehouse();
                        if !owns(w) {
                            idle.wait();
                            continue;
                        }
                        idle.reset();
                        let request = gen.next_for_warehouse(w);
                        // Retry CC aborts until commit (fresh, younger id
                        // each time, as wait-die requires).
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let txn = ids.next();
                            let result = match &request {
                                TxnRequest::Payment(p) => exec_payment(&ctx, txn, p),
                                TxnRequest::NewOrder(n) => exec_new_order(&ctx, txn, n),
                            };
                            match result {
                                Ok(()) => {
                                    committed.incr();
                                    break;
                                }
                                Err(e) if e.is_retryable() => {
                                    // User rollbacks are deterministic:
                                    // completed business outcome, no retry.
                                    if let TxnRequest::NewOrder(n) = &request {
                                        if n.rollback {
                                            committed.incr();
                                            break;
                                        }
                                    }
                                    cc_aborts.incr();
                                }
                                Err(e) => panic!("unexpected execution error: {e}"),
                            }
                        }
                    }
                });
            }
            // Timer thread: stop everyone after `duration`.
            std::thread::sleep(duration);
            stop.store(true, Ordering::Relaxed);
        });

        PhaseResult {
            committed: committed.get(),
            cc_aborts: cc_aborts.get(),
            olap_queries: olap_done.get(),
            elapsed: started.elapsed(),
        }
    }

    /// Runs a full schedule, one result per phase.
    pub fn run_schedule(
        &self,
        schedule: &PhaseSchedule,
        phase_duration: Duration,
        seed: u64,
    ) -> Vec<(Phase, PhaseResult)> {
        schedule
            .phases()
            .iter()
            .map(|phase| {
                (
                    *phase,
                    self.run_phase(phase.kind, phase_duration, seed ^ phase.index as u64),
                )
            })
            .collect()
    }
}

/// Returns `Err` variants the engine treats as fatal, for tests.
pub fn is_fatal(e: &DbError) -> bool {
    !e.is_retryable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anydb_workload::tpcc::TpccConfig;

    fn engine(executors: u32) -> Dbx1000 {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 5).unwrap());
        Dbx1000::new(
            db,
            Dbx1000Config {
                executors,
                payment_fraction: 1.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn partitionable_phase_commits_transactions() {
        let e = engine(2);
        let r = e.run_phase(PhaseKind::OltpPartitionable, Duration::from_millis(100), 1);
        assert!(r.committed > 100, "committed = {}", r.committed);
        assert_eq!(r.olap_queries, 0);
        assert!(r.tx_per_sec() > 0.0);
    }

    #[test]
    fn skewed_phase_still_makes_progress() {
        let e = engine(4);
        let r = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(100), 2);
        assert!(r.committed > 50, "committed = {}", r.committed);
    }

    #[test]
    fn htap_phase_runs_olap_on_tes() {
        let e = engine(2);
        let r = e.run_phase(PhaseKind::HtapSkewed, Duration::from_millis(150), 3);
        assert!(r.olap_queries > 0, "no OLAP queries completed");
        assert!(r.committed > 0);
    }

    #[test]
    fn skew_hurts_throughput_vs_partitionable() {
        // The core Figure 5 behavior: N TEs under full skew commit far
        // fewer transactions than under a partitionable load. Needs one
        // warehouse per TE so the partitionable case is conflict-free.
        let cfg = TpccConfig {
            warehouses: 4,
            ..TpccConfig::small()
        };
        let db = Arc::new(TpccDb::load(cfg, 5).unwrap());
        let e = Dbx1000::new(
            db,
            Dbx1000Config {
                executors: 4,
                payment_fraction: 1.0,
                ..Default::default()
            },
        );
        let uniform = e.run_phase(PhaseKind::OltpPartitionable, Duration::from_millis(300), 4);
        let skewed = e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(300), 5);
        assert!(
            skewed.tx_per_sec() < uniform.tx_per_sec() * 0.9,
            "skew {} vs uniform {}",
            skewed.tx_per_sec(),
            uniform.tx_per_sec()
        );
    }

    #[test]
    fn schedule_produces_one_result_per_phase() {
        let e = engine(2);
        let results = e.run_schedule(&PhaseSchedule::figure5(), Duration::from_millis(30), 7);
        assert_eq!(results.len(), 6);
        assert!(results.iter().all(|(_, r)| r.committed > 0));
    }

    #[test]
    fn histories_from_concurrent_phase_are_serializable() {
        let db = Arc::new(TpccDb::load(TpccConfig::small(), 6).unwrap());
        let hist = Arc::new(History::new());
        let e = Dbx1000::new(
            db,
            Dbx1000Config {
                executors: 4,
                payment_fraction: 1.0,
                ..Default::default()
            },
        )
        .with_history(hist.clone());
        e.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(100), 8);
        assert!(hist.is_serializable());
    }
}
