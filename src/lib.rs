//! # anydb — facade crate
//!
//! Re-exports every crate of the AnyDB reproduction under one roof so that
//! examples and cross-crate integration tests have a single dependency, and
//! downstream users can depend on `anydb` alone.
//!
//! ```
//! use anydb::common::Value;
//! assert_eq!(Value::Int(1).as_int().unwrap(), 1);
//! ```

pub use anydb_common as common;
pub use anydb_core as core;
pub use anydb_dbx1000 as dbx1000;
pub use anydb_sim as sim;
pub use anydb_storage as storage;
pub use anydb_stream as stream;
pub use anydb_txn as txn;
pub use anydb_workload as workload;
