//! The Figure 1 scenario as a library example: an evolving workload
//! (partitionable OLTP → skewed OLTP → skewed HTAP → partitionable HTAP)
//! served by AnyDB, which re-routes its architecture per phase, next to
//! the static shared-nothing baseline.
//!
//! Run with: `cargo run --release --example htap_evolving`

use std::time::Duration;

use anydb::sim::figure1_series;
use anydb::workload::phases::PhaseSchedule;

fn main() {
    println!("Evolving workload (Figure 1), virtual-time simulation, 4 workers\n");

    let horizon = Duration::from_millis(200);
    let (anydb, dbx) = figure1_series(4, horizon, 7);

    let schedule = PhaseSchedule::figure1();
    println!(
        "{:>5}  {:<20} {:>10} {:>10}",
        "phase", "regime", "AnyDB", "DBx1000"
    );
    for ((phase, a), d) in schedule.phases().iter().zip(&anydb).zip(&dbx) {
        println!(
            "{:>5}  {:<20} {:>10.2} {:>10.2}   {}",
            phase.index,
            phase.kind.label(),
            a.mtps,
            d.mtps,
            if a.mtps > d.mtps * 1.15 {
                "<- AnyDB adapts, baseline cannot"
            } else {
                ""
            }
        );
    }
    println!("\n(M tx/s; OLTP only, as in the paper's Figure 1.)");
    println!("AnyDB per-phase choices: shared-nothing while partitionable,");
    println!("streaming CC under skew, analytics on disaggregated ACs in HTAP.");
}
