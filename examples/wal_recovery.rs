//! Fault tolerance (§2.3's "naïve approach"): ACs emit log events to
//! durable storage; after a crash the DBMS stops and replays the log.
//!
//! Run with: `cargo run --release --example wal_recovery`

use anydb::common::{ColumnDef, DataType, Schema, Tuple};
use anydb::common::{TableId, TxnId, Value};
use anydb::storage::catalog::TableSpec;
use anydb::storage::recovery::replay_records;
use anydb::storage::{LogOp, Partitioner, Store, Wal};

fn fresh_store() -> Store {
    let store = Store::new();
    store
        .create_table(TableSpec::new(
            Schema::new(
                "accounts",
                vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("balance", DataType::Int),
                ],
                &["id"],
            ),
            1,
            Partitioner::Single,
        ))
        .expect("create table");
    store
}

fn main() {
    // Live system: execute transactions, logging every operation as an
    // event stream toward "durable storage".
    let live = fresh_store();
    let wal = Wal::new();
    let table = live.table(TableId(0)).unwrap();

    // txn 1: create two accounts, commit.
    for (id, balance) in [(1, 100), (2, 200)] {
        let t = Tuple::new(vec![Value::Int(id), Value::Int(balance)]);
        let rid = table.insert(t.clone()).unwrap();
        wal.append(
            TxnId(1),
            LogOp::Insert {
                table: rid.table,
                partition: rid.partition,
                slot: rid.slot,
                tuple: t,
            },
        );
    }
    wal.append(TxnId(1), LogOp::Commit);

    // txn 2: transfer 50, commit.
    let a = table.get_rid(&anydb::storage::key::int_key(1)).unwrap();
    let b = table.get_rid(&anydb::storage::key::int_key(2)).unwrap();
    table
        .update(a, |t| {
            t.set(1, Value::Int(50));
        })
        .unwrap();
    wal.append(
        TxnId(2),
        LogOp::Update {
            rid: a,
            after: Tuple::new(vec![Value::Int(1), Value::Int(50)]),
        },
    );
    table
        .update(b, |t| {
            t.set(1, Value::Int(250));
        })
        .unwrap();
    wal.append(
        TxnId(2),
        LogOp::Update {
            rid: b,
            after: Tuple::new(vec![Value::Int(2), Value::Int(250)]),
        },
    );
    wal.append(TxnId(2), LogOp::Commit);

    // txn 3: in flight when the system "crashes" — never commits.
    wal.append(
        TxnId(3),
        LogOp::Update {
            rid: a,
            after: Tuple::new(vec![Value::Int(1), Value::Int(0)]),
        },
    );

    // The log is serialized ("what would hit disk") and replayed into a
    // fresh store after the crash.
    let bytes = wal.serialize();
    println!("crash! {} log bytes survive", bytes.len());

    let recovered = fresh_store();
    let records = Wal::deserialize(bytes).expect("parse log");
    let stats = replay_records(&records, &recovered).expect("replay");
    println!(
        "recovery: {} committed txns replayed ({} inserts, {} updates), {} in-flight txn skipped",
        stats.committed, stats.inserts, stats.updates, stats.skipped
    );

    let rt = recovered.table(TableId(0)).unwrap();
    for id in [1i64, 2] {
        let rid = rt.get_rid(&anydb::storage::key::int_key(id)).unwrap();
        let (t, _) = rt.read(rid).unwrap();
        println!("account {id}: balance {}", t.get(1));
    }
    println!("txn 3's torn write is gone; committed state is intact.");
}
