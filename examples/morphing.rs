//! Architecture morphing (Figure 3): the *same* pool of AnyComponents
//! serves one transaction as a shared-nothing system and, concurrently, a
//! decomposed pipeline — purely through event routing, with zero
//! reconfiguration in between.
//!
//! This example drives components directly (no engine) to make the
//! routing visible.
//!
//! Run with: `cargo run --release --example morphing`

use std::sync::Arc;

use anydb::common::metrics::Counter;
use anydb::common::{AcId, TxnId};
use anydb::core::component::AnyComponent;
use anydb::core::event::{Completion, Event, OpEnvelope, TxnTracker};
use anydb::core::strategy::payment_stage_groups;
use anydb::txn::sequencer::Sequencer;
use anydb::workload::tpcc::gen::TxnRequest;
use anydb::workload::tpcc::{CustomerSelector, PaymentParams, TpccConfig, TpccDb};
use crossbeam::channel::unbounded;

fn payment(w: i64, amount: f64) -> PaymentParams {
    PaymentParams {
        w_id: w,
        d_id: 1,
        c_w_id: w,
        c_d_id: 1,
        customer: CustomerSelector::ById(1),
        amount,
        date: 20_200_610,
    }
}

fn main() {
    let db = Arc::new(TpccDb::load(TpccConfig::small(), 5).expect("load"));

    // One pool of three generic components.
    let mut senders = Vec::new();
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let (tx, handle) = AnyComponent::spawn(AcId(i), db.clone(), None, Arc::new(Counter::new()));
        senders.push(tx);
        handles.push(handle);
    }
    let (done_tx, done_rx) = unbounded();

    // Query 1 perceives a SHARED-NOTHING system: the whole transaction is
    // one event executed at the AC owning warehouse 1.
    senders[0].send(Event::ExecuteTxn {
        txn: TxnId(1),
        req: TxnRequest::Payment(payment(1, 10.0)),
        done: done_tx.clone(),
    });
    let Completion::Txn(d) = done_rx.recv().unwrap().0[0] else {
        unreachable!("txn completion expected")
    };
    println!(
        "txn {} ran aggregated on AC 0 (shared-nothing view): ok={}",
        d.txn, d.ok
    );

    // Query 2, concurrently, perceives a DISAGGREGATED system: the same
    // kind of transaction is decomposed into stage events across all
    // three ACs, ordered by streaming-CC stamps.
    let sequencer = Sequencer::new(db.cfg.warehouses as usize);
    let p = payment(2, 20.0);
    let domain = (p.w_id - 1) as u32;
    let seq = sequencer.stamp(domain as usize);
    let groups = payment_stage_groups(&p);
    let tracker = TxnTracker::new(TxnId(2), groups.len() as u32, done_tx.clone());
    for (stage, ops) in groups {
        senders[stage as usize % senders.len()].send(Event::OpGroup(OpEnvelope {
            txn: TxnId(2),
            stage,
            domain,
            seq,
            ops,
            tracker: tracker.clone(),
        }));
    }
    let Completion::Txn(d) = done_rx.recv().unwrap().0[0] else {
        unreachable!("txn completion expected")
    };
    println!(
        "txn {} ran disaggregated across ACs 0-2 (pipeline view): ok={}",
        d.txn, d.ok
    );

    // Elasticity "for free" (§5): add a fourth AC and route to it — no
    // downtime, no reconfiguration of existing components.
    let (tx, handle) = AnyComponent::spawn(AcId(3), db.clone(), None, Arc::new(Counter::new()));
    tx.send(Event::ExecuteTxn {
        txn: TxnId(3),
        req: TxnRequest::Payment(payment(1, 5.0)),
        done: done_tx.clone(),
    });
    let Completion::Txn(d) = done_rx.recv().unwrap().0[0] else {
        unreachable!("txn completion expected")
    };
    println!(
        "txn {} ran on the elastically added AC 3: ok={}",
        d.txn, d.ok
    );

    tx.send(Event::Shutdown);
    handle.join().unwrap();
    for tx in senders {
        tx.send(Event::Shutdown);
    }
    for h in handles {
        h.join().unwrap();
    }
    println!("\nSame components, three architectures, zero reconfiguration.");
}
