//! Data beaming (§4 / Figure 6): initiate data streams before the query
//! is even compiled and hide the transfer latency entirely.
//!
//! Run with: `cargo run --release --example data_beaming`

use std::sync::Arc;
use std::time::Duration;

use anydb::core::beaming::{run_q3, ArchMode, BeamVariant, BeamingConfig};
use anydb::workload::chbench::Q3Spec;
use anydb::workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    let cfg = TpccConfig {
        warehouses: 2,
        customers_per_district: 300,
        orders_per_district: 600,
        lines_per_order: 1,
        items: 100,
        ..TpccConfig::default()
    };
    let db = Arc::new(TpccDb::load(cfg, 99).expect("load"));
    let spec = Q3Spec::default();
    let compile = Duration::from_millis(30); // the paper's DB-C compile time

    println!("CH-benCHmark Q3 (3 filtered scans, 2 joins), compile time 30 ms\n");
    for arch in [ArchMode::Aggregated, ArchMode::Disaggregated] {
        for variant in [
            BeamVariant::Baseline,
            BeamVariant::BeamBuild,
            BeamVariant::BeamBuildProbe,
        ] {
            let cfg = BeamingConfig::paper_default(variant, arch, compile);
            let r = run_q3(&db, spec, &cfg);
            println!(
                "{:<13} {:<18} total {:>7.1} ms  (build {:>6.1} ms, probe {:>6.1} ms, {} rows)",
                arch.label(),
                variant.label(),
                r.total.as_secs_f64() * 1e3,
                r.build.as_secs_f64() * 1e3,
                r.probe.as_secs_f64() * 1e3,
                r.rows
            );
        }
    }
    println!("\nBeaming overlaps data transfer with query compilation; with DPI");
    println!("offload the disaggregated architecture can even beat the aggregated");
    println!("one — the network acts as a co-processor (§4).");
}
