//! Quickstart: boot an architecture-less AnyDB, run transactions and a
//! query, and watch one generic component act as different database
//! functions (Figure 2 of the paper).
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use anydb::core::{AnyDbEngine, EngineConfig, Strategy};
use anydb::workload::phases::PhaseKind;
use anydb::workload::tpcc::{TpccConfig, TpccDb};

fn main() {
    // 1. Load a small TPC-C database (the state our data streams ship).
    let db = Arc::new(TpccDb::load(TpccConfig::default(), 42).expect("load TPC-C"));
    println!(
        "loaded TPC-C: {} warehouses, {} customers, {} open orders",
        db.cfg.warehouses,
        db.customer.row_count(),
        db.neworder.row_count()
    );

    // 2. Boot AnyDB with two AnyComponents. The engine has no fixed
    //    architecture: the execution strategy below is a per-run routing
    //    decision, not a build-time property.
    let engine = AnyDbEngine::new(
        db.clone(),
        EngineConfig {
            strategy: Strategy::SharedNothing,
            acs: 2,
            ..Default::default()
        },
    );

    // 3. Run an OLTP burst: whole transactions routed to the AC owning
    //    each home warehouse (physically aggregated execution).
    let result = engine.run_phase(PhaseKind::OltpPartitionable, Duration::from_millis(300), 1);
    println!(
        "shared-nothing OLTP: {} transactions committed ({:.0} tx/s)",
        result.committed,
        result.tx_per_sec()
    );

    // 4. Same components, different events: an HTAP phase routes CH-Q3
    //    analytics to a dedicated AC while transactions keep running.
    let result = engine.run_phase(PhaseKind::HtapPartitionable, Duration::from_millis(300), 2);
    println!(
        "HTAP: {} transactions ({:.0} tx/s) + {} analytics queries, OLTP isolated from OLAP",
        result.committed,
        result.tx_per_sec(),
        result.olap_queries
    );

    // 5. Switch the architecture per run — streaming CC turns record
    //    locking into consistent event ordering (no locks anywhere).
    let engine = AnyDbEngine::new(
        db,
        EngineConfig {
            strategy: Strategy::StreamingCc,
            acs: 2,
            ..Default::default()
        },
    );
    let result = engine.run_phase(PhaseKind::OltpSkewed, Duration::from_millis(300), 3);
    println!(
        "streaming CC under full skew: {} transactions ({:.0} tx/s), coordination-free",
        result.committed,
        result.tx_per_sec()
    );
}
